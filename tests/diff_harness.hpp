// Shared helpers for cross-backend differential tests.
//
// The differential harness (test_backend_diff.cpp) compares every
// LinalgBackend against the strict reference over seeded randomized
// inputs. Two comparison regimes exist:
//
//   bitwise   expect_bits_equal — the strict contract. Failure prints
//             the first mismatching element with both bit patterns.
//   envelope  EnvelopeCheck — the fast contract. Each element must
//             satisfy |got - ref| <= abs + rel * max(|ref|, scale)
//             against the backend's declared Tolerance; the check
//             accumulates the worst violation ratio so a failing run
//             reports how far outside the envelope the backend landed
//             (and a passing run can report the observed headroom).
//
// Kept header-only so future backend suites (BLAS, GPU) reuse it
// without a test-support library.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>

#include "linalg/backend.hpp"
#include "linalg/matrix.hpp"
#include "support/random.hpp"

namespace sdl::diffharness {

inline linalg::Matrix random_matrix(support::Rng& rng, std::size_t rows,
                                    std::size_t cols, double lo, double hi) {
    linalg::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(lo, hi);
    }
    return m;
}

/// Random points in the solver's native domain (mixing ratios live in
/// [0, 1]^d). `duplicate_every` > 0 copies earlier rows verbatim —
/// exact duplicates drive the kernel matrix toward singularity, which
/// is how the ill-conditioned sweeps approach the GP jitter floor.
inline linalg::Matrix random_points(support::Rng& rng, std::size_t n, std::size_t d,
                                    std::size_t duplicate_every = 0) {
    linalg::Matrix pts = random_matrix(rng, n, d, 0.0, 1.0);
    if (duplicate_every > 0) {
        for (std::size_t i = duplicate_every; i < n; i += duplicate_every) {
            for (std::size_t k = 0; k < d; ++k) pts(i, k) = pts(i - 1, k);
        }
    }
    return pts;
}

/// RBF gram matrix assembled on the strict backend — the SPD input for
/// the factor/extend/solve sweeps. Smaller `noise` means a harder
/// (worse-conditioned) factorization, especially with duplicate points.
inline linalg::Matrix gram_matrix(const linalg::Matrix& pts, double lengthscale,
                                  double noise) {
    const linalg::LinalgBackend& strict = linalg::strict_backend();
    linalg::Matrix k = strict.cross_sq_dist(pts, pts);
    strict.rbf_from_sq_dist(k, 1.0, lengthscale);
    for (std::size_t i = 0; i < k.rows(); ++i) k(i, i) += noise;
    return k;
}

inline std::uint64_t bits(double x) noexcept { return std::bit_cast<std::uint64_t>(x); }

inline void expect_bits_equal(std::span<const double> ref, std::span<const double> got,
                              const std::string& what) {
    ASSERT_EQ(ref.size(), got.size()) << what;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (bits(ref[i]) != bits(got[i])) {
            ADD_FAILURE() << what << ": element " << i << " differs: ref " << ref[i]
                          << " (0x" << std::hex << bits(ref[i]) << ") vs got "
                          << got[i] << " (0x" << bits(got[i]) << ")";
            return;  // one mismatch per call keeps the log readable
        }
    }
}

inline void expect_bits_equal(const linalg::Matrix& ref, const linalg::Matrix& got,
                              const std::string& what) {
    ASSERT_EQ(ref.rows(), got.rows()) << what;
    ASSERT_EQ(ref.cols(), got.cols()) << what;
    for (std::size_t r = 0; r < ref.rows(); ++r) {
        expect_bits_equal(ref.row(r), got.row(r), what + " row " + std::to_string(r));
    }
}

/// Accumulates envelope comparisons across a whole sweep. `ratio` is
/// |got - ref| / (abs + rel * max(|ref|, scale)); anything above 1
/// violates the backend's declared tolerance. worst() lets the suite
/// print the observed headroom after a passing run.
class EnvelopeCheck {
public:
    EnvelopeCheck(std::string kernel, linalg::LinalgBackend::Tolerance tol)
        : kernel_(std::move(kernel)), tol_(tol) {}

    void compare(std::span<const double> ref, std::span<const double> got,
                 double scale, const std::string& context) {
        ASSERT_EQ(ref.size(), got.size()) << kernel_ << " " << context;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            if (tol_.bitwise()) {
                if (bits(ref[i]) != bits(got[i])) {
                    ADD_FAILURE()
                        << kernel_ << " " << context << ": element " << i
                        << " must be bitwise identical: ref " << ref[i] << " vs got "
                        << got[i];
                }
                continue;
            }
            const double err = std::fabs(got[i] - ref[i]);
            const double allowed =
                tol_.abs + tol_.rel * std::max(std::fabs(ref[i]), scale);
            const double ratio = allowed > 0.0 ? err / allowed : (err > 0.0 ? 1e30 : 0.0);
            if (ratio > worst_ratio_) {
                worst_ratio_ = ratio;
                worst_err_ = err;
                worst_context_ = context + " element " + std::to_string(i);
            }
            if (err > allowed) {
                ADD_FAILURE() << kernel_ << " " << context << ": element " << i
                              << " outside declared envelope: |" << got[i] << " - "
                              << ref[i] << "| = " << err << " > " << allowed
                              << " (rel " << tol_.rel << ", abs " << tol_.abs
                              << ", scale " << scale << ")";
            }
        }
        ++cases_;
    }

    void compare(const linalg::Matrix& ref, const linalg::Matrix& got, double scale,
                 const std::string& context) {
        ASSERT_EQ(ref.rows(), got.rows()) << kernel_ << " " << context;
        ASSERT_EQ(ref.cols(), got.cols()) << kernel_ << " " << context;
        for (std::size_t r = 0; r < ref.rows(); ++r) {
            compare(ref.row(r), got.row(r), scale,
                    context + " row " + std::to_string(r));
        }
    }

    [[nodiscard]] std::size_t cases() const noexcept { return cases_; }
    [[nodiscard]] double worst_ratio() const noexcept { return worst_ratio_; }

    /// One summary line per kernel so a green run still documents the
    /// observed error against the declared envelope (the headroom the
    /// envelopes were tuned to keep).
    void report() const {
        std::printf("  %-22s %4zu comparisons, worst error %.3g (%.1f%% of envelope)\n",
                    kernel_.c_str(), cases_, worst_err_, worst_ratio_ * 100.0);
    }

private:
    std::string kernel_;
    linalg::LinalgBackend::Tolerance tol_;
    std::size_t cases_ = 0;
    double worst_ratio_ = 0.0;
    double worst_err_ = 0.0;
    std::string worst_context_;
};

}  // namespace sdl::diffharness
