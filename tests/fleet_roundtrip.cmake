# ctest -P helper: fleet crash-recovery round trip.
#
# Runs CAMPAIGN once single-process (the reference), then twice through
# sdlbench_fleet: a clean 3-worker run, and a chaos run where one worker
# SIGKILLs itself right after a journal append, before its ack — the
# coordinator must salvage the journaled cell, re-lease the rest of the
# dead worker's lease, and still produce campaign.json/campaign.csv
# byte-identical to the reference. A duplicated cell would either trip
# the coordinator's lease-table guard (run fails) or change the report
# bytes (comparison fails), so "no cell executed twice" is checked by
# construction.
#
# Vars: RUNNER (sdlbench_run), FLEET (sdlbench_fleet), CAMPAIGN, WORK_DIR.
foreach(var RUNNER FLEET CAMPAIGN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "fleet_roundtrip.cmake: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${RUNNER}" --campaign "${CAMPAIGN}" "${WORK_DIR}/ref"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference run failed (${rc})\n${out}\n${err}")
endif()

# Regression pin: the cost-model claim order (CampaignRunner::run_cells)
# is a scheduling detail and must not change a single output byte. The
# golden digest was recorded from a single-process run *before* the
# cost-ordered claiming landed.
if(DEFINED GOLDEN_MD5)
  file(MD5 "${WORK_DIR}/ref/campaign.json" ref_md5)
  if(NOT ref_md5 STREQUAL GOLDEN_MD5)
    message(FATAL_ERROR
      "single-process campaign.json digest drifted: got ${ref_md5}, "
      "golden ${GOLDEN_MD5} — an execution-order or report change leaked "
      "into the output bytes")
  endif()
endif()

function(compare_outputs dir label)
  foreach(doc campaign.json campaign.csv)
    execute_process(
      COMMAND "${CMAKE_COMMAND}" -E compare_files
              "${WORK_DIR}/ref/${doc}" "${dir}/${doc}"
      RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR
        "${label}: ${doc} differs from the single-process reference")
    endif()
  endforeach()
endfunction()

# Leg 1: clean 3-worker fleet run.
execute_process(
  COMMAND "${FLEET}" --campaign "${CAMPAIGN}" "${WORK_DIR}/fleet" --workers 3
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fleet run failed (${rc})\n${out}\n${err}")
endif()
compare_outputs("${WORK_DIR}/fleet" "clean fleet run")

# Leg 2: SIGKILL worker 1 of 3 after its first journal append (record
# durable, ack unsent — the critical window). The coordinator must
# report the loss and salvage the journaled cell.
execute_process(
  COMMAND "${FLEET}" --campaign "${CAMPAIGN}" "${WORK_DIR}/fleet_kill"
          --workers 3 --chaos-kill 1:1
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos fleet run failed (${rc})\n${out}\n${err}")
endif()
string(FIND "${err}" "worker w1 lost" lost)
if(lost EQUAL -1)
  message(FATAL_ERROR
    "chaos run never reported the killed worker — the kill did not land\n"
    "${out}\n${err}")
endif()
string(FIND "${err}" "salvaged 1 journaled cell" salvaged)
if(salvaged EQUAL -1)
  message(FATAL_ERROR
    "chaos run did not salvage the journaled-but-unacked cell\n${out}\n${err}")
endif()
compare_outputs("${WORK_DIR}/fleet_kill" "chaos fleet run")

# Leg 3: an 8-cell grid with 2 workers makes every initial lease carry
# exactly 2 cells (ceil(8/4) = ceil(6/4) = 2 — deterministic regardless
# of hello order), so the killed worker dies holding a journaled cell
# AND an untouched one: salvage and re-lease exercised together.
file(WRITE "${WORK_DIR}/eight.yaml" "\
campaign:
  name: fleet_relase
  replicates: 2
  base_seed: 11
  seed_mode: per_replicate
grid:
  solvers: [genetic, random]
  batch_sizes: [4, 8]
experiment:
  total_samples: 16
plate:
  rows: 8
  cols: 12
")
execute_process(
  COMMAND "${RUNNER}" --campaign "${WORK_DIR}/eight.yaml" "${WORK_DIR}/ref8"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "8-cell reference run failed (${rc})\n${out}\n${err}")
endif()
execute_process(
  COMMAND "${FLEET}" --campaign "${WORK_DIR}/eight.yaml"
          "${WORK_DIR}/fleet_relase" --workers 2 --chaos-kill 0:1
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "re-lease fleet run failed (${rc})\n${out}\n${err}")
endif()
string(FIND "${err}" "re-leasing 1" releases)
if(releases EQUAL -1)
  message(FATAL_ERROR
    "re-lease run never re-leased the dead worker's queued cell\n${out}\n${err}")
endif()
foreach(doc campaign.json campaign.csv)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/ref8/${doc}" "${WORK_DIR}/fleet_relase/${doc}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "re-lease run: ${doc} differs from the single-process reference")
  endif()
endforeach()

message(STATUS "fleet roundtrip OK: clean, killed-worker, and re-lease runs "
               "all byte-identical to the single-process reference")
