# ctest -P helper: run -> kill -> resume round trip for campaign
# checkpointing.
#
# Runs CAMPAIGN to a reference directory, simulates a crash by truncating
# a copy of the journal mid-record (keeping the header and the first
# complete cell), resumes from the truncated journal with
# `sdlbench_run --campaign ... --resume`, and requires the resumed
# campaign.json to be byte-identical to the uninterrupted reference.
#
# Vars: RUNNER (sdlbench_run path), CAMPAIGN (campaign yaml), WORK_DIR.
foreach(var RUNNER CAMPAIGN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "resume_roundtrip.cmake: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# 1. Uninterrupted reference run.
execute_process(
  COMMAND "${RUNNER}" --campaign "${CAMPAIGN}" "${WORK_DIR}/ref"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference run failed (${rc})\n${out}\n${err}")
endif()

# 2. Simulate the kill: keep the journal header, the first complete cell
# record, and 40 bytes of the second record (a torn final line).
file(READ "${WORK_DIR}/ref/cells.jsonl" journal)
string(FIND "${journal}" "\n" header_end)
math(EXPR record_start "${header_end} + 1")
string(SUBSTRING "${journal}" ${record_start} -1 rest)
string(FIND "${rest}" "\n" first_record_end)
math(EXPR keep "${record_start} + ${first_record_end} + 1 + 40")
string(SUBSTRING "${journal}" 0 ${keep} truncated)
file(MAKE_DIRECTORY "${WORK_DIR}/resume")
file(WRITE "${WORK_DIR}/resume/cells.jsonl" "${truncated}")

# 3. Resume from the damaged journal.
execute_process(
  COMMAND "${RUNNER}" --campaign "${CAMPAIGN}" --resume "${WORK_DIR}/resume"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume run failed (${rc})\n${out}\n${err}")
endif()
string(FIND "${out}" "Resuming:" resumed)
if(resumed EQUAL -1)
  message(FATAL_ERROR "resume run did not report resuming\n${out}")
endif()

# 4. The resumed report must match the uninterrupted one byte for byte.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK_DIR}/ref/campaign.json" "${WORK_DIR}/resume/campaign.json"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "resumed campaign.json differs from the uninterrupted reference")
endif()
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK_DIR}/ref/campaign.csv" "${WORK_DIR}/resume/campaign.csv"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "resumed campaign.csv differs from the uninterrupted reference")
endif()

message(STATUS "resume round trip OK: truncated journal recovered byte-identically")
