# ctest -P helper: shard -> merge round trip for campaign sharding.
#
# Runs CAMPAIGN once uninterrupted, then again as SHARDS round-robin
# shards (`--shard i/N`), fuses the shard journals with sdlbench_merge,
# and requires the merged campaign.json/csv to be byte-identical to the
# single-run reference. Also checks that merging with a shard missing
# fails loudly.
#
# Vars: RUNNER (sdlbench_run), MERGER (sdlbench_merge), CAMPAIGN,
# WORK_DIR, SHARDS (count, default 3).
foreach(var RUNNER MERGER CAMPAIGN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "shard_merge_roundtrip.cmake: ${var} not set")
  endif()
endforeach()
if(NOT DEFINED SHARDS)
  set(SHARDS 3)
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${RUNNER}" --campaign "${CAMPAIGN}" "${WORK_DIR}/ref"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference run failed (${rc})\n${out}\n${err}")
endif()

set(shard_dirs)
foreach(i RANGE 1 ${SHARDS})
  execute_process(
    COMMAND "${RUNNER}" --campaign "${CAMPAIGN}" --shard "${i}/${SHARDS}"
            "${WORK_DIR}/shard${i}"
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "shard ${i}/${SHARDS} failed (${rc})\n${out}\n${err}")
  endif()
  list(APPEND shard_dirs "${WORK_DIR}/shard${i}")
endforeach()

# Merging with one shard missing must fail loudly.
list(POP_BACK shard_dirs last_shard)
execute_process(
  COMMAND "${MERGER}" "${CAMPAIGN}" "${WORK_DIR}/merged" ${shard_dirs}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "merge with a missing shard unexpectedly succeeded\n${out}")
endif()
string(FIND "${err}" "incomplete merge" incomplete)
if(incomplete EQUAL -1)
  message(FATAL_ERROR "missing-shard merge did not explain itself\n${err}")
endif()

# The full merge must reproduce the single run byte for byte.
list(APPEND shard_dirs "${last_shard}")
execute_process(
  COMMAND "${MERGER}" "${CAMPAIGN}" "${WORK_DIR}/merged" ${shard_dirs}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "merge failed (${rc})\n${out}\n${err}")
endif()
foreach(doc campaign.json campaign.csv)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/ref/${doc}" "${WORK_DIR}/merged/${doc}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "merged ${doc} differs from the single-run reference")
  endif()
endforeach()

message(STATUS
  "shard merge OK: ${SHARDS} shards fused byte-identically to the single run")
