# ctest -P helper: run SMOKE_BINARY [SMOKE_ARGS], fail on nonzero exit,
# and when SMOKE_EXPECT is set require it as a substring of the output.
# SMOKE_EXPECT_FAIL=1 inverts the exit-code check (the binary must fail)
# — used by the negative-path smokes, e.g. an unknown --backend name.
if(NOT DEFINED SMOKE_BINARY)
  message(FATAL_ERROR "smoke_runner.cmake: SMOKE_BINARY not set")
endif()

set(args)
if(DEFINED SMOKE_ARGS)
  separate_arguments(args NATIVE_COMMAND "${SMOKE_ARGS}")
endif()

execute_process(
  COMMAND "${SMOKE_BINARY}" ${args}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
)

if(SMOKE_EXPECT_FAIL)
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "smoke: ${SMOKE_BINARY} ${SMOKE_ARGS} was expected to fail but exited 0\nstdout:\n${out}\nstderr:\n${err}")
  endif()
elseif(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "smoke: ${SMOKE_BINARY} ${SMOKE_ARGS} exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

if(DEFINED SMOKE_EXPECT)
  string(FIND "${out}${err}" "${SMOKE_EXPECT}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "smoke: output of ${SMOKE_BINARY} does not contain \"${SMOKE_EXPECT}\"\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endif()

message(STATUS "smoke: ${SMOKE_BINARY} ${SMOKE_ARGS} OK")
