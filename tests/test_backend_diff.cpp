// Cross-backend differential harness (the proof layer for
// linalg/backend.hpp).
//
// Three claims are enforced here:
//   1. The strict backend is bitwise identical to the historical
//      portable kernels — re-implemented inline below as independent
//      scalar loops, so a "minor optimization" to either copy fails the
//      suite instead of silently moving the reference.
//   2. The fast backend stays inside the per-kernel tolerance envelopes
//      it declares (LinalgBackend::tolerance), across randomized
//      n x d x C sweeps, ill-conditioned kernels near the GP jitter
//      floor, and post-observe rank-1 extensions.
//   3. End to end, fast-backend experiment outcomes stay within a tight
//      band of strict on the scenario pack.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/colorpicker.hpp"
#include "core/scenarios.hpp"
#include "core/workcell_spec.hpp"
#include "diff_harness.hpp"
#include "linalg/backend.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/fastmath.hpp"
#include "solver/bayes.hpp"
#include "support/common.hpp"
#include "support/random.hpp"

using namespace sdl;
using namespace sdl::diffharness;
using linalg::LinalgBackend;
using linalg::Matrix;
using linalg::Vec;
using sdl::support::Rng;
using Kernel = LinalgBackend::Kernel;

namespace {

/// The randomized n (training points) x d (dims) x C (candidates)
/// sweep grid. Sizes straddle the solver's real shapes (n up to the GP
/// max_points neighborhood, C around the 512-candidate pools) plus the
/// degenerate edges (n = 1, C = 1, odd sizes that leave unroll tails).
struct CaseShape {
    std::size_t n, d, c;
};
constexpr CaseShape kShapes[] = {
    {1, 2, 1},   {2, 3, 7},   {3, 4, 17},   {5, 4, 33},  {8, 4, 48},
    {13, 3, 64}, {21, 4, 95}, {33, 4, 100}, {48, 6, 128}, {64, 4, 257},
};
constexpr std::uint64_t kSeeds[] = {11, 29, 47};

// ---------------------------------------------------------------------
// Independent scalar re-implementations of the historical kernels. The
// strict backend must match these bit for bit; they are deliberately
// written out again here (not calls into src/linalg) so the reference
// cannot drift together with the implementation.

Matrix reference_cross_sq_dist(const Matrix& a, const Matrix& b) {
    Matrix out(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.rows(); ++j) {
            double d2 = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k) {
                const double diff = a(i, k) - b(j, k);
                d2 += diff * diff;
            }
            out(i, j) = d2;
        }
    }
    return out;
}

Matrix reference_cholesky_factor(const Matrix& a) {
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
        const double ljj = std::sqrt(diag);
        l(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = a(i, j);
            for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
            l(i, j) = s / ljj;
        }
    }
    return l;
}

Matrix reference_rbf_from_sq_dist(Matrix d2, double sv, double ls) {
    for (std::size_t i = 0; i < d2.rows(); ++i) {
        for (std::size_t j = 0; j < d2.cols(); ++j) {
            d2(i, j) = sv * linalg::fast_exp(-0.5 * d2(i, j) / (ls * ls));
        }
    }
    return d2;
}

/// Naive per-column forward substitution — the semantic every
/// solve_lower_multi implementation approximates.
Matrix reference_solve_lower_multi(const Matrix& l, Matrix b) {
    const std::size_t n = l.rows();
    for (std::size_t col = 0; col < b.cols(); ++col) {
        for (std::size_t i = 0; i < n; ++i) {
            double s = b(i, col);
            for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * b(k, col);
            b(i, col) = s / l(i, i);
        }
    }
    return b;
}

}  // namespace

TEST(BackendRegistry, NamesResolveAndUnknownFailsLoudly) {
    EXPECT_EQ(linalg::backend_names(), (std::vector<std::string>{"strict", "fast"}));
    EXPECT_EQ(linalg::strict_backend().name(), "strict");
    EXPECT_EQ(linalg::fast_backend().name(), "fast");
    EXPECT_EQ(&linalg::backend_by_name("strict"), &linalg::strict_backend());
    EXPECT_EQ(&linalg::backend_by_name("fast"), &linalg::fast_backend());
    EXPECT_TRUE(linalg::is_backend_name("fast"));
    EXPECT_FALSE(linalg::is_backend_name("blas"));
    try {
        (void)linalg::backend_by_name("cuda");
        FAIL() << "unknown backend name must throw";
    } catch (const support::ConfigError& e) {
        // The message must name the bad input and list the valid set.
        EXPECT_NE(std::string(e.what()).find("cuda"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("strict, fast"), std::string::npos);
    }
    // Every declared strict envelope is the bitwise contract.
    for (const Kernel k :
         {Kernel::kCrossSqDist, Kernel::kVexp, Kernel::kRbfFromSqDist,
          Kernel::kRbfKernel, Kernel::kCholeskyFactor, Kernel::kCholeskyExtend,
          Kernel::kSolveLowerMulti, Kernel::kSolveLowerMultiFused}) {
        EXPECT_TRUE(linalg::strict_backend().tolerance(k).bitwise());
    }
}

TEST(BackendDiff, StrictMatchesHistoricalKernelsBitwise) {
    const LinalgBackend& strict = linalg::strict_backend();
    for (const std::uint64_t seed : kSeeds) {
        for (const CaseShape& shape : kShapes) {
            Rng rng(seed * 7919 + shape.n * 131 + shape.c);
            const Matrix pts = random_points(rng, shape.n, shape.d);
            const Matrix queries = random_matrix(rng, shape.c, shape.d, -0.5, 1.5);

            const Matrix d2 = strict.cross_sq_dist(pts, queries);
            expect_bits_equal(reference_cross_sq_dist(pts, queries), d2,
                              "strict cross_sq_dist");

            Matrix rbf = d2;
            strict.rbf_from_sq_dist(rbf, 1.0, 0.3);
            expect_bits_equal(reference_rbf_from_sq_dist(d2, 1.0, 0.3), rbf,
                              "strict rbf_from_sq_dist");

            const Matrix gram = gram_matrix(pts, 0.3, 1e-2);
            const Matrix l = strict.cholesky_factor(gram);
            expect_bits_equal(reference_cholesky_factor(gram), l,
                              "strict cholesky_factor");

            Matrix b = random_matrix(rng, shape.n, shape.c, -1.0, 1.0);
            const Matrix expected = reference_solve_lower_multi(l, b);
            strict.solve_lower_multi(l, b);
            expect_bits_equal(expected, b, "strict solve_lower_multi");
        }
    }
}

TEST(BackendDiff, FastStaysInsideDeclaredEnvelopes) {
    const LinalgBackend& strict = linalg::strict_backend();
    const LinalgBackend& fast = linalg::fast_backend();

    EnvelopeCheck env_cross("cross_sq_dist", fast.tolerance(Kernel::kCrossSqDist));
    EnvelopeCheck env_vexp("vexp", fast.tolerance(Kernel::kVexp));
    EnvelopeCheck env_rbf("rbf_from_sq_dist", fast.tolerance(Kernel::kRbfFromSqDist));
    EnvelopeCheck env_rbfk("rbf_kernel", fast.tolerance(Kernel::kRbfKernel));
    EnvelopeCheck env_factor("cholesky_factor", fast.tolerance(Kernel::kCholeskyFactor));
    EnvelopeCheck env_extend("cholesky_extend", fast.tolerance(Kernel::kCholeskyExtend));
    EnvelopeCheck env_solve("solve_lower_multi",
                            fast.tolerance(Kernel::kSolveLowerMulti));
    EnvelopeCheck env_fused("solve_lower_multi_fused",
                            fast.tolerance(Kernel::kSolveLowerMultiFused));

    // The GP's real hyperparameter grid plus noise levels down to the
    // jitter-floor neighborhood; duplicate points push the gram matrix
    // toward singularity so the hard factorizations are exercised, not
    // just the friendly ones.
    constexpr double kLengthscales[] = {0.15, 0.3, 0.6, 1.2};
    constexpr double kNoises[] = {1e-1, 1e-3, 1e-8};

    std::size_t total_cases = 0;
    std::size_t case_index = 0;
    for (const std::uint64_t seed : kSeeds) {
        for (const CaseShape& shape : kShapes) {
            Rng rng(seed * 6151 + shape.n * 257 + shape.d);
            const double ls = kLengthscales[case_index % 4];
            const double noise = kNoises[case_index % 3];
            const std::size_t duplicate_every = case_index % 2 == 0 ? 3 : 0;
            ++case_index;
            const std::string ctx = "n=" + std::to_string(shape.n) +
                                    " d=" + std::to_string(shape.d) +
                                    " c=" + std::to_string(shape.c) +
                                    " seed=" + std::to_string(seed);

            const Matrix pts = random_points(rng, shape.n, shape.d, duplicate_every);
            const Matrix queries = random_matrix(rng, shape.c, shape.d, -0.5, 1.5);

            // cross_sq_dist
            const Matrix d2_ref = strict.cross_sq_dist(pts, queries);
            const Matrix d2_fast = fast.cross_sq_dist(pts, queries);
            env_cross.compare(d2_ref, d2_fast, d2_ref.max_abs(), ctx);
            ++total_cases;

            // vexp (shared implementation: declared bitwise)
            {
                Vec args(shape.c);
                for (std::size_t i = 0; i < shape.c; ++i) args[i] = rng.uniform(-40, 2);
                if (shape.c > 2) {  // exercise the clamp edges too
                    args[0] = -750.0;
                    args[1] = 720.0;
                }
                Vec out_ref(shape.c);
                Vec out_fast(shape.c);
                strict.vexp(args, out_ref);
                fast.vexp(args, out_fast);
                env_vexp.compare(out_ref, out_fast, 1.0, ctx);
                ++total_cases;
            }

            // rbf_from_sq_dist + scalar rbf_kernel
            {
                Matrix rbf_ref = d2_ref;
                Matrix rbf_fast = d2_ref;
                strict.rbf_from_sq_dist(rbf_ref, 1.0, ls);
                fast.rbf_from_sq_dist(rbf_fast, 1.0, ls);
                env_rbf.compare(rbf_ref, rbf_fast, 1.0, ctx);
                ++total_cases;

                Vec k_ref(shape.n);
                Vec k_fast(shape.n);
                for (std::size_t i = 0; i < shape.n; ++i) {
                    k_ref[i] = strict.rbf_kernel(pts.row(i), queries.row(0), 1.0, ls);
                    k_fast[i] = fast.rbf_kernel(pts.row(i), queries.row(0), 1.0, ls);
                }
                env_rbfk.compare(k_ref, k_fast, 1.0, ctx);
                ++total_cases;
            }

            // cholesky factor / extend on the same gram matrix
            const Matrix gram = gram_matrix(pts, ls, noise);
            const Matrix l_ref = strict.cholesky_factor(gram);
            const Matrix l_fast = fast.cholesky_factor(gram);
            env_factor.compare(l_ref, l_fast, gram.max_abs(), ctx);
            ++total_cases;

            {
                // Extend with a fresh point, both backends growing the
                // SAME strict factor so the comparison isolates extend.
                const Matrix extra = random_points(rng, 1, shape.d);
                Vec b(shape.n);
                for (std::size_t i = 0; i < shape.n; ++i) {
                    b[i] = strict.rbf_kernel(pts.row(i), extra.row(0), 1.0, ls);
                }
                const double c =
                    strict.rbf_kernel(extra.row(0), extra.row(0), 1.0, ls) + noise;
                Matrix grown_ref = l_ref;
                Matrix grown_fast = l_ref;
                strict.cholesky_extend(grown_ref, b, c);
                fast.cholesky_extend(grown_fast, b, c);
                env_extend.compare(grown_ref, grown_fast, gram.max_abs(), ctx);
                ++total_cases;
            }

            // multi-RHS solves against the same strict factor
            {
                const Matrix b = random_matrix(rng, shape.n, shape.c, -1.0, 1.0);
                Matrix y_ref = b;
                Matrix y_fast = b;
                strict.solve_lower_multi(l_ref, y_ref);
                fast.solve_lower_multi(l_ref, y_fast);
                env_solve.compare(y_ref, y_fast, y_ref.max_abs(), ctx);
                ++total_cases;

                Vec weights(shape.n);
                for (double& w : weights) w = rng.uniform(-1, 1);
                Matrix f_ref = b;
                Matrix f_fast = b;
                Vec ws_ref(shape.c, 0.0);
                Vec ws_fast(shape.c, 0.0);
                Vec sq_ref(shape.c, 0.0);
                Vec sq_fast(shape.c, 0.0);
                strict.solve_lower_multi_fused(l_ref, f_ref, weights, ws_ref, sq_ref);
                fast.solve_lower_multi_fused(l_ref, f_fast, weights, ws_fast, sq_fast);
                env_fused.compare(f_ref, f_fast, f_ref.max_abs(), ctx);
                double scale_ws = 0.0;
                for (const double v : ws_ref) scale_ws = std::max(scale_ws, std::fabs(v));
                double scale_sq = 0.0;
                for (const double v : sq_ref) scale_sq = std::max(scale_sq, std::fabs(v));
                env_fused.compare(ws_ref, ws_fast, scale_ws, ctx + " weighted_sums");
                env_fused.compare(sq_ref, sq_fast, scale_sq, ctx + " sq_norms");
                ++total_cases;
            }
        }
    }

    // The acceptance floor: >= 200 randomized kernel cases per backend
    // pair, and a visible record of how much envelope headroom remains.
    EXPECT_GE(total_cases, 200u);
    std::printf("backend diff strict<->fast: %zu kernel cases\n", total_cases);
    for (const EnvelopeCheck* env : {&env_cross, &env_vexp, &env_rbf, &env_rbfk,
                                     &env_factor, &env_extend, &env_solve, &env_fused}) {
        env->report();
    }
}

TEST(BackendDiff, IllConditionedNearJitterFloorStaysInEnvelope) {
    // Exact duplicate points with a noise nugget barely above the GP's
    // scale-relative initial jitter (1e-10): the smallest pivots sit
    // orders of magnitude below the matrix scale, which is where a
    // re-associated factorization loses the most accuracy.
    const LinalgBackend& strict = linalg::strict_backend();
    const LinalgBackend& fast = linalg::fast_backend();
    EnvelopeCheck env_factor("cholesky_factor(ill)",
                             fast.tolerance(Kernel::kCholeskyFactor));
    for (const std::uint64_t seed : kSeeds) {
        Rng rng(seed * 104729);
        const Matrix pts = random_points(rng, 32, 4, /*duplicate_every=*/2);
        for (const double noise : {1e-6, 1e-9}) {
            const Matrix gram = gram_matrix(pts, 0.3, noise);
            const Matrix l_ref = strict.cholesky_factor(gram);
            const Matrix l_fast = fast.cholesky_factor(gram);
            env_factor.compare(l_ref, l_fast, gram.max_abs(),
                               "noise=" + std::to_string(noise));
        }
    }
    env_factor.report();
}

TEST(BackendDiff, GaussianProcessPostObservePredictionsTrackStrict) {
    // Whole-GP composition: fit, a run of constant-liar style observe()
    // extensions, then a batch prediction — the exact call sequence the
    // Bayesian solver drives. Fast-backend posteriors must track strict
    // within a composed envelope (individual kernel envelopes compound
    // through the factorization and two triangular solves).
    Rng rng(424243);
    const std::size_t n = 24;
    const std::size_t dims = 4;
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> x(dims);
        for (double& v : x) v = rng.uniform();
        double y = 0.0;
        for (const double v : x) y += (v - 0.4) * (v - 0.4);
        xs.push_back(std::move(x));
        ys.push_back(y + rng.normal(0.0, 0.01));
    }

    solver::GaussianProcess gp_strict;
    solver::GaussianProcess gp_fast;
    gp_fast.set_backend(linalg::fast_backend());
    EXPECT_EQ(gp_strict.backend().name(), "strict");
    EXPECT_EQ(gp_fast.backend().name(), "fast");
    gp_strict.fit(xs, ys, /*optimize=*/true);
    gp_fast.fit(xs, ys, /*optimize=*/true);
    // On real (non-degenerate) data the LML grid search must not flip
    // its winner over sub-envelope kernel differences.
    EXPECT_EQ(gp_strict.hyperparams().lengthscale, gp_fast.hyperparams().lengthscale);
    EXPECT_EQ(gp_strict.hyperparams().noise_var, gp_fast.hyperparams().noise_var);

    for (std::size_t extra = 0; extra < 8; ++extra) {
        std::vector<double> x(dims);
        for (double& v : x) v = rng.uniform();
        const double lie = ys.front();
        gp_strict.observe(x, lie);
        gp_fast.observe(std::move(x), lie);
    }

    Matrix pool(64, dims);
    for (std::size_t c = 0; c < pool.rows(); ++c) {
        for (std::size_t k = 0; k < dims; ++k) pool(c, k) = rng.uniform();
    }
    const auto pred_strict = gp_strict.predict_batch(pool);
    const auto pred_fast = gp_fast.predict_batch(pool);
    ASSERT_EQ(pred_strict.size(), pred_fast.size());
    for (std::size_t i = 0; i < pred_strict.size(); ++i) {
        EXPECT_NEAR(pred_fast[i].mean, pred_strict[i].mean, 1e-6)
            << "posterior mean diverged at candidate " << i;
        EXPECT_NEAR(pred_fast[i].variance, pred_strict[i].variance, 1e-6)
            << "posterior variance diverged at candidate " << i;
    }
}

TEST(BackendDiffE2E, ScenarioPackOutcomesStayWithinBand) {
    // Full closed-loop runs over the whole scenario pack, strict vs
    // fast, same spec and seed. Sub-envelope kernel differences may in
    // principle flip an argmax-EI pick, so outcomes are compared as a
    // statistical band on the final best score, not bitwise.
    for (const std::string& name : core::scenario_names()) {
        core::ColorPickerConfig config =
            core::apply_workcell_spec(core::ColorPickerConfig{}, core::resolve_scenario(name));
        config.target = {140, 110, 90};
        config.total_samples = 16;
        config.batch_size = 4;
        config.solver = "bayesian";
        config.seed = 7;

        config.linalg_backend = "strict";
        core::ColorPickerApp app_strict(config);
        const core::ExperimentOutcome strict_outcome = app_strict.run();

        config.linalg_backend = "fast";
        core::ColorPickerApp app_fast(config);
        const core::ExperimentOutcome fast_outcome = app_fast.run();

        EXPECT_EQ(strict_outcome.samples.size(), fast_outcome.samples.size())
            << "scenario " << name;
        // Identical proposals give identical scores; a flipped pick must
        // still land within a few score units (full range ~441) of the
        // strict trajectory to count as "the same experiment".
        EXPECT_NEAR(fast_outcome.best_score, strict_outcome.best_score, 5.0)
            << "scenario " << name;
    }
}
