// Tests for the campaign layer: grid expansion, deterministic per-cell
// seeding (same spec twice -> identical results), aggregation math, and
// the campaign YAML round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "campaign/campaign.hpp"
#include "campaign/campaign_io.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "support/common.hpp"
#include "support/log.hpp"

using namespace sdl;
using namespace sdl::campaign;

namespace {

CampaignSpec tiny_spec() {
    CampaignSpec spec;
    spec.name = "tiny";
    spec.base.total_samples = 6;
    spec.base.batch_size = 3;
    spec.axes.solvers = {"genetic", "random"};
    spec.base_seed = 11;
    spec.seed_mode = SeedMode::PerCell;
    return spec;
}

}  // namespace

// ------------------------------------------------------------- expansion

TEST(Campaign, ExpandsFullCartesianGridInFixedOrder) {
    CampaignSpec spec;
    spec.axes.solvers = {"genetic", "random"};
    spec.axes.batch_sizes = {1, 4};
    spec.axes.objectives = {core::Objective::RgbEuclidean, core::Objective::DeltaE2000};
    spec.axes.targets = {{120, 120, 120}, {10, 20, 30}};
    spec.replicates = 3;

    EXPECT_EQ(cell_count(spec), 2u * 2u * 2u * 2u * 3u);
    const auto cells = expand_grid(spec);
    ASSERT_EQ(cells.size(), cell_count(spec));
    // Replicates innermost, solvers outermost.
    EXPECT_EQ(cells[0].solver, "genetic");
    EXPECT_EQ(cells[0].replicate, 0);
    EXPECT_EQ(cells[1].replicate, 1);
    EXPECT_EQ(cells[2].replicate, 2);
    EXPECT_EQ(cells[3].target, (color::Rgb8{10, 20, 30}));
    EXPECT_EQ(cells.back().solver, "random");
    EXPECT_EQ(cells.back().batch_size, 4);
    EXPECT_EQ(cells.back().replicate, 2);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].index, i);
        // Every cell resolves its own config.
        EXPECT_EQ(cells[i].config.solver, cells[i].solver);
        EXPECT_EQ(cells[i].config.batch_size, cells[i].batch_size);
        EXPECT_EQ(cells[i].config.target, cells[i].target);
        EXPECT_FALSE(cells[i].config.experiment_id.empty());
    }
    // Experiment ids are unique.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        for (std::size_t j = i + 1; j < cells.size(); ++j) {
            EXPECT_NE(cells[i].config.experiment_id, cells[j].config.experiment_id);
        }
    }
}

TEST(Campaign, WorkcellAxisIsOutermostAndResolvesCellHardware) {
    CampaignSpec spec = tiny_spec();
    spec.axes.workcells = {"baseline", "minimal"};
    const auto cells = expand_grid(spec);
    ASSERT_EQ(cells.size(), 4u);  // 2 workcells x 2 solvers
    EXPECT_EQ(cells[0].workcell, "baseline");
    EXPECT_EQ(cells[1].workcell, "baseline");
    EXPECT_EQ(cells[2].workcell, "minimal");
    EXPECT_EQ(cells[3].workcell, "minimal");
    // The scenario resolved into each cell's config and experiment id.
    EXPECT_TRUE(cells[0].config.workcell.has_sciclops);
    EXPECT_FALSE(cells[2].config.workcell.has_sciclops);
    EXPECT_FALSE(cells[2].config.workcell.has_pf400);
    EXPECT_FALSE(cells[2].config.workcell.has_barty);
    EXPECT_NE(cells[2].config.experiment_id.find("minimal"), std::string::npos);
}

TEST(Campaign, SingleBaseScenarioAxisKeepsBaseHardware) {
    // An axis of just the base scenario is equivalent to not sweeping:
    // in-code customizations of the base survive expansion.
    CampaignSpec spec = tiny_spec();
    spec.base.faults.command_rejection_prob = 0.25;
    spec.axes.workcells = {"baseline"};
    const auto cells = expand_grid(spec);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_DOUBLE_EQ(cells[0].config.faults.command_rejection_prob, 0.25);
    EXPECT_EQ(cells[0].config.experiment_id.find("baseline"), std::string::npos);
}

TEST(Campaign, EmptyAxesFallBackToBaseConfig) {
    CampaignSpec spec;
    spec.base.solver = "anneal";
    spec.base.batch_size = 7;
    spec.base.objective = core::Objective::DeltaE76;
    spec.base.target = {1, 2, 3};
    const auto cells = expand_grid(spec);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].solver, "anneal");
    EXPECT_EQ(cells[0].batch_size, 7);
    EXPECT_EQ(cells[0].objective, core::Objective::DeltaE76);
    EXPECT_EQ(cells[0].target, (color::Rgb8{1, 2, 3}));
}

TEST(Campaign, RejectsNonPositiveReplicates) {
    CampaignSpec spec;
    spec.replicates = 0;
    EXPECT_THROW((void)expand_grid(spec), support::ConfigError);
}

// --------------------------------------------------------------- seeding

TEST(Campaign, PerCellSeedsAreDistinct) {
    CampaignSpec spec = tiny_spec();
    spec.replicates = 2;
    const auto cells = expand_grid(spec);
    ASSERT_EQ(cells.size(), 4u);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].config.seed, spec.base_seed + i);
    }
}

TEST(Campaign, PerReplicateSeedsArePairedAcrossTheGrid) {
    CampaignSpec spec = tiny_spec();
    spec.seed_mode = SeedMode::PerReplicate;
    spec.replicates = 2;
    const auto cells = expand_grid(spec);
    ASSERT_EQ(cells.size(), 4u);
    // genetic r0, genetic r1, random r0, random r1.
    EXPECT_EQ(cells[0].config.seed, spec.base_seed);
    EXPECT_EQ(cells[1].config.seed, spec.base_seed + 1);
    EXPECT_EQ(cells[2].config.seed, spec.base_seed);
    EXPECT_EQ(cells[3].config.seed, spec.base_seed + 1);
}

TEST(Campaign, SameSpecTwiceGivesByteIdenticalResults) {
    support::set_log_level(support::LogLevel::Error);
    const CampaignSpec spec = tiny_spec();
    CampaignRunnerOptions options;
    options.log_progress = false;
    const CampaignRunner runner(options);
    const auto first = runner.run(spec);
    const auto second = runner.run(spec);
    ASSERT_EQ(first.size(), second.size());
    // The deterministic serialization (modeled time only, no wall time)
    // must match byte for byte.
    EXPECT_EQ(campaign_results_to_json(spec, first).pretty(),
              campaign_results_to_json(spec, second).pretty());
    EXPECT_EQ(campaign_results_to_csv(first), campaign_results_to_csv(second));
}

TEST(Campaign, ThreadCountInvariantByteIdenticalResults) {
    // The reproducibility contract's thread-count half: the same spec
    // must serialize byte-identically whether cells run one at a time
    // or fan out across every core. The bayesian cell routes the whole
    // GP/linalg stack through the worker pool.
    support::set_log_level(support::LogLevel::Error);
    CampaignSpec spec = tiny_spec();
    spec.axes.solvers = {"bayesian", "random"};
    std::string reference;
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, hw}) {
        CampaignRunnerOptions options;
        options.log_progress = false;
        options.max_workers = workers;
        const CampaignRunner runner(options);
        const auto results = runner.run(spec);
        const std::string doc = campaign_results_to_json(spec, results).pretty();
        if (reference.empty()) {
            reference = doc;
        } else {
            EXPECT_EQ(doc, reference) << "campaign.json diverged at max_workers="
                                      << workers;
        }
    }
}

// ----------------------------------------------------------- aggregation

TEST(Campaign, AggregatesGroupReplicatesAndComputeStats) {
    // Hand-built results: one grid point with two replicates, another
    // with one.
    CellResult a, b, c;
    a.cell.solver = b.cell.solver = "genetic";
    a.cell.batch_size = b.cell.batch_size = 4;
    a.cell.replicate = 0;
    b.cell.replicate = 1;
    a.outcome.best_score = 10.0;
    b.outcome.best_score = 14.0;
    a.outcome.metrics.total_time = support::Duration::minutes(30);
    b.outcome.metrics.total_time = support::Duration::minutes(50);
    c.cell.solver = "random";
    c.cell.batch_size = 4;
    c.outcome.best_score = 99.0;
    c.outcome.metrics.total_time = support::Duration::minutes(10);

    const auto groups = aggregate_results(std::vector<CellResult>{a, b, c});
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].solver, "genetic");
    EXPECT_EQ(groups[0].replicates, 2u);
    EXPECT_DOUBLE_EQ(groups[0].best_score.mean(), 12.0);
    EXPECT_DOUBLE_EQ(groups[0].best_score.min(), 10.0);
    EXPECT_DOUBLE_EQ(groups[0].best_score.max(), 14.0);
    // Sample stddev of {10, 14} = sqrt(8).
    EXPECT_NEAR(groups[0].best_score.stddev(), 2.8284271247, 1e-9);
    EXPECT_DOUBLE_EQ(groups[0].total_minutes.mean(), 40.0);
    EXPECT_EQ(groups[1].solver, "random");
    EXPECT_EQ(groups[1].replicates, 1u);
    EXPECT_DOUBLE_EQ(groups[1].best_score.mean(), 99.0);
}

TEST(Campaign, ResultJsonCarriesTheSharedSchema) {
    support::set_log_level(support::LogLevel::Error);
    CampaignSpec spec = tiny_spec();
    spec.axes.solvers = {"random"};
    CampaignRunnerOptions options;
    options.log_progress = false;
    const auto results = CampaignRunner(options).run(spec);
    ASSERT_EQ(results.size(), 1u);

    const auto cell_doc = experiment_result_to_json(results[0].cell.config,
                                                    results[0].outcome);
    EXPECT_EQ(cell_doc.at("schema").as_string(), "sdlbench.experiment_result.v2");
    EXPECT_EQ(cell_doc.at("workcell").as_string(), "baseline");
    EXPECT_EQ(cell_doc.at("samples").size(), 6u);
    EXPECT_TRUE(cell_doc.at("metrics").contains("commands_completed"));

    const auto doc = campaign_results_to_json(spec, results);
    EXPECT_EQ(doc.at("schema").as_string(), "sdlbench.campaign_result.v2");
    EXPECT_EQ(doc.at("cells").size(), 1u);
    EXPECT_EQ(doc.at("cells").as_array()[0].at("cell").at("workcell").as_string(),
              "baseline");
    EXPECT_EQ(doc.at("cells").as_array()[0].at("result").at("schema").as_string(),
              "sdlbench.experiment_result.v2");
    EXPECT_EQ(doc.at("aggregates").size(), 1u);
}

TEST(Campaign, NonDefaultBackendIsRecordedPerCell) {
    // A fast-backend campaign must say so in every per-cell result
    // record; a strict campaign must omit the key entirely (so the
    // reference documents stay byte-identical across releases).
    support::set_log_level(support::LogLevel::Error);
    CampaignSpec spec = tiny_spec();
    spec.axes.solvers = {"bayesian"};
    spec.base.linalg_backend = "fast";
    CampaignRunnerOptions options;
    options.log_progress = false;
    const auto results = CampaignRunner(options).run(spec);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].cell.config.linalg_backend, "fast");

    const auto doc = campaign_results_to_json(spec, results);
    const auto& cell_result = doc.at("cells").as_array()[0].at("result");
    ASSERT_TRUE(cell_result.contains("linalg_backend"));
    EXPECT_EQ(cell_result.at("linalg_backend").as_string(), "fast");

    spec.base.linalg_backend = "strict";
    const auto strict_results = CampaignRunner(options).run(spec);
    const auto strict_doc = campaign_results_to_json(spec, strict_results);
    EXPECT_FALSE(
        strict_doc.at("cells").as_array()[0].at("result").contains("linalg_backend"));
}

// -------------------------------------------------------------- YAML I/O

TEST(CampaignIo, ParsesFullDocument) {
    const char* text = R"(campaign:
  name: demo
  replicates: 2
  base_seed: 42
  seed_mode: per_replicate
grid:
  workcells: [baseline, fast_lane]
  solvers: [genetic, bayesian]
  batch_sizes: [2, 8]
  objectives: [rgb, de2000]
  targets: [[120, 120, 120], [10, 20, 30]]
experiment:
  total_samples: 16
plate:
  rows: 4
  cols: 6
)";
    const CampaignSpec spec = campaign_from_yaml(text);
    EXPECT_EQ(spec.name, "demo");
    EXPECT_EQ(spec.replicates, 2);
    EXPECT_EQ(spec.base_seed, 42u);
    EXPECT_EQ(spec.seed_mode, SeedMode::PerReplicate);
    EXPECT_EQ(spec.axes.workcells,
              (std::vector<std::string>{"baseline", "fast_lane"}));
    EXPECT_EQ(spec.axes.solvers, (std::vector<std::string>{"genetic", "bayesian"}));
    EXPECT_EQ(spec.axes.batch_sizes, (std::vector<int>{2, 8}));
    ASSERT_EQ(spec.axes.objectives.size(), 2u);
    EXPECT_EQ(spec.axes.objectives[1], core::Objective::DeltaE2000);
    ASSERT_EQ(spec.axes.targets.size(), 2u);
    EXPECT_EQ(spec.axes.targets[1], (color::Rgb8{10, 20, 30}));
    EXPECT_EQ(spec.base.total_samples, 16);
    EXPECT_EQ(spec.base.plate_rows, 4);
    EXPECT_EQ(spec.base.plate_cols, 6);
    EXPECT_EQ(cell_count(spec), 2u * 2u * 2u * 2u * 2u * 2u);
}

TEST(CampaignIo, RequiresCampaignSectionAndRejectsUnknownKeys) {
    EXPECT_THROW((void)campaign_from_yaml("experiment:\n  seed: 1\n"),
                 support::ConfigError);
    EXPECT_THROW((void)campaign_from_yaml("campaign:\n  nmae: typo\n"),
                 support::ConfigError);
    EXPECT_THROW((void)campaign_from_yaml("campaign:\n  name: x\ngrid:\n  solver: [a]\n"),
                 support::ConfigError);
    EXPECT_THROW(
        (void)campaign_from_yaml("campaign:\n  seed_mode: round_robin\n"),
        support::ConfigError);
}

TEST(CampaignIo, RoundTripThroughYaml) {
    CampaignSpec original;
    original.name = "round_trip";
    original.replicates = 4;
    original.base_seed = 77;
    original.seed_mode = SeedMode::PerReplicate;
    original.axes.solvers = {"pattern", "oracle"};
    original.axes.batch_sizes = {3, 9};
    original.axes.objectives = {core::Objective::DeltaE76};
    original.axes.targets = {{200, 100, 50}};
    original.base.total_samples = 27;
    original.base.plate_rows = 2;
    original.base.plate_cols = 5;

    const CampaignSpec back = campaign_from_yaml(campaign_to_yaml(original));
    EXPECT_EQ(back.name, original.name);
    EXPECT_EQ(back.replicates, original.replicates);
    EXPECT_EQ(back.base_seed, original.base_seed);
    EXPECT_EQ(back.seed_mode, original.seed_mode);
    EXPECT_EQ(back.axes.solvers, original.axes.solvers);
    EXPECT_EQ(back.axes.batch_sizes, original.axes.batch_sizes);
    EXPECT_EQ(back.axes.objectives, original.axes.objectives);
    EXPECT_EQ(back.axes.targets, original.axes.targets);
    EXPECT_EQ(back.base.total_samples, original.base.total_samples);
    EXPECT_EQ(back.base.plate_rows, original.base.plate_rows);
    EXPECT_EQ(back.base.plate_cols, original.base.plate_cols);
    // The expansions agree cell by cell.
    const auto cells_a = expand_grid(original);
    const auto cells_b = expand_grid(back);
    ASSERT_EQ(cells_a.size(), cells_b.size());
    for (std::size_t i = 0; i < cells_a.size(); ++i) {
        EXPECT_EQ(cells_a[i].config.seed, cells_b[i].config.seed);
        EXPECT_EQ(cells_a[i].config.experiment_id, cells_b[i].config.experiment_id);
    }
}

TEST(CampaignIo, WorkcellAxisRoundTripsThroughYaml) {
    CampaignSpec original;
    original.name = "scenario_rt";
    original.axes.workcells = {"degraded", "fast_lane"};
    original.axes.solvers = {"random"};
    original.base.total_samples = 4;

    const std::string yaml = campaign_to_yaml(original);
    EXPECT_NE(yaml.find("workcells"), std::string::npos);
    const CampaignSpec back = campaign_from_yaml(yaml);
    EXPECT_EQ(back.axes.workcells, original.axes.workcells);
    const auto cells_a = expand_grid(original);
    const auto cells_b = expand_grid(back);
    ASSERT_EQ(cells_a.size(), cells_b.size());
    for (std::size_t i = 0; i < cells_a.size(); ++i) {
        EXPECT_EQ(cells_a[i].workcell, cells_b[i].workcell);
        EXPECT_EQ(cells_a[i].config.experiment_id, cells_b[i].config.experiment_id);
    }
}
