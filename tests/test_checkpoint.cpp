// Tests for campaign checkpointing: journal write/load round trips,
// kill-style truncated-journal recovery, loud digest-mismatch rejection,
// shard selection, and shard-merge / resume flows producing reports
// byte-identical to a single uninterrupted run.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "support/atomic_io.hpp"
#include "support/common.hpp"
#include "support/failpoint.hpp"
#include "support/log.hpp"

using namespace sdl;
using namespace sdl::campaign;

namespace {

CampaignSpec tiny_spec() {
    CampaignSpec spec;
    spec.name = "ckpt";
    spec.base.total_samples = 6;
    spec.base.batch_size = 3;
    spec.axes.solvers = {"genetic", "random"};
    spec.axes.batch_sizes = {2, 3};
    spec.base_seed = 5;
    return spec;
}

/// The tiny grid, executed once and shared by every test (the journal
/// and merge tests only re-serialize, never re-run).
const std::vector<CellResult>& shared_results() {
    static const std::vector<CellResult> results = [] {
        support::set_log_level(support::LogLevel::Error);
        CampaignRunnerOptions options;
        options.log_progress = false;
        return CampaignRunner(options).run(tiny_spec());
    }();
    return results;
}

std::string slurp(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
}

/// Creates a journal for `spec` in `dir` containing `results`.
void write_journal(const std::string& dir, const CampaignSpec& spec,
                   std::size_t cells_total, const std::vector<CellResult>& results,
                   Shard shard = {}) {
    std::filesystem::create_directories(dir);
    CheckpointJournal journal(dir, spec, cells_total, shard);
    for (const CellResult& result : results) journal.append(result);
}

struct TempDir {
    explicit TempDir(std::string p) : path(std::move(p)) {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

}  // namespace

// ----------------------------------------------------------------- shard

TEST(Shard, ParsesOneBasedSlices) {
    const Shard s = Shard::parse("2/3");
    EXPECT_EQ(s.index, 1u);
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.str(), "2/3");
    EXPECT_FALSE(s.is_whole());
    EXPECT_TRUE(Shard::parse("1/1").is_whole());
    // Round-robin membership.
    EXPECT_TRUE(s.contains(1));
    EXPECT_TRUE(s.contains(4));
    EXPECT_FALSE(s.contains(0));
    EXPECT_FALSE(s.contains(2));
}

TEST(Shard, RejectsMalformedAndOutOfRange) {
    for (const char* bad : {"", "3", "/3", "3/", "0/3", "4/3", "a/3", "1/b", "1/0",
                            "1/3x", "-1/3"}) {
        EXPECT_THROW((void)Shard::parse(bad), support::ConfigError) << bad;
    }
}

// --------------------------------------------------------------- digests

TEST(Checkpoint, SpecDigestTracksSpecIdentity) {
    const CampaignSpec spec = tiny_spec();
    EXPECT_EQ(spec_digest(spec), spec_digest(tiny_spec()));
    CampaignSpec other = tiny_spec();
    other.base_seed += 1;
    EXPECT_NE(spec_digest(spec), spec_digest(other));
    const auto grid = expand_grid(spec);
    EXPECT_NE(cell_digest(grid[0]), cell_digest(grid[1]));
}

// ------------------------------------------------------------- round trip

TEST(Checkpoint, JournalRoundTripReproducesResultsExactly) {
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    TempDir dir("test_ckpt_roundtrip");
    write_journal(dir.path, spec, results.size(), results);

    const LoadedJournal loaded =
        load_journal(journal_path(dir.path), spec, expand_grid(spec));
    EXPECT_FALSE(loaded.dropped_torn_tail);
    EXPECT_EQ(loaded.shard, Shard{});
    ASSERT_EQ(loaded.cells.size(), results.size());
    // The reconstructed results serialize byte-identically — the property
    // resume and merge rely on.
    EXPECT_EQ(campaign_results_to_json(spec, loaded.cells).pretty(),
              campaign_results_to_json(spec, results).pretty());
    EXPECT_EQ(campaign_results_to_csv(loaded.cells), campaign_results_to_csv(results));
    // Wall time rides along (for shard balancing), outside the report.
    EXPECT_EQ(loaded.cells[0].wall_seconds, results[0].wall_seconds);
}

TEST(Checkpoint, TruncatedJournalDropsOnlyTheTornTail) {
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    TempDir dir("test_ckpt_truncated");
    write_journal(dir.path, spec, results.size(), results);

    // Kill-style damage: chop the file mid final record.
    std::string text = slurp(journal_path(dir.path));
    ASSERT_GT(text.size(), 40u);
    text.resize(text.size() - 40);
    {
        std::ofstream file(journal_path(dir.path), std::ios::binary | std::ios::trunc);
        file << text;
    }

    const LoadedJournal loaded =
        load_journal(journal_path(dir.path), spec, expand_grid(spec));
    EXPECT_TRUE(loaded.dropped_torn_tail);
    ASSERT_EQ(loaded.cells.size(), results.size() - 1);
    // Compaction material: header + the surviving records.
    EXPECT_EQ(loaded.lines.size(), results.size());
    for (std::size_t i = 0; i < loaded.cells.size(); ++i) {
        EXPECT_EQ(loaded.cells[i].cell.index, results[i].cell.index);
    }
}

TEST(Checkpoint, EmptyOrHeaderlessJournalIsRejected) {
    const CampaignSpec spec = tiny_spec();
    TempDir dir("test_ckpt_empty");
    {
        std::ofstream file(journal_path(dir.path), std::ios::binary);
    }
    EXPECT_THROW((void)load_journal(journal_path(dir.path), spec, expand_grid(spec)),
                 support::ConfigError);
    {
        // A torn header (kill before the first newline).
        std::ofstream file(journal_path(dir.path), std::ios::binary | std::ios::trunc);
        file << "{\"schema\":\"sdlbench.campaign_jou";
    }
    EXPECT_THROW((void)load_journal(journal_path(dir.path), spec, expand_grid(spec)),
                 support::ConfigError);
}

TEST(Checkpoint, SpecDigestMismatchIsRejectedLoudly) {
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    TempDir dir("test_ckpt_digest");
    write_journal(dir.path, spec, results.size(), results);

    CampaignSpec other = tiny_spec();
    other.base_seed += 100;
    try {
        (void)load_journal(journal_path(dir.path), other, expand_grid(other));
        FAIL() << "digest mismatch must throw";
    } catch (const support::ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("digest mismatch"), std::string::npos);
    }
}

TEST(Checkpoint, CorruptMiddleRecordAndDuplicatesAreRejected) {
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    TempDir dir("test_ckpt_corrupt");
    write_journal(dir.path, spec, results.size(), results);
    std::string text = slurp(journal_path(dir.path));

    // Corrupt a middle record (still newline-terminated): loud failure,
    // not silent recovery — only the torn tail may be dropped.
    std::vector<std::string> lines;
    std::stringstream stream(text);
    for (std::string line; std::getline(stream, line);) lines.push_back(line);
    ASSERT_GE(lines.size(), 3u);
    std::string corrupted;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        corrupted += (i == 1) ? "{\"schema\":\"sdlbench.cell_result.v1\",garbage" : lines[i];
        corrupted += '\n';
    }
    {
        std::ofstream file(journal_path(dir.path), std::ios::binary | std::ios::trunc);
        file << corrupted;
    }
    EXPECT_THROW((void)load_journal(journal_path(dir.path), spec, expand_grid(spec)),
                 support::ConfigError);

    // A cell recorded twice is corruption, not progress.
    std::string duplicated = text + lines[1] + "\n";
    {
        std::ofstream file(journal_path(dir.path), std::ios::binary | std::ios::trunc);
        file << duplicated;
    }
    EXPECT_THROW((void)load_journal(journal_path(dir.path), spec, expand_grid(spec)),
                 support::ConfigError);
}

TEST(Checkpoint, OutOfShardRecordsAreRejected) {
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    TempDir dir("test_ckpt_shard_member");
    // Header claims shard 1/2 (indices 0, 2, ...) but records hold every
    // cell.
    write_journal(dir.path, spec, results.size(), results, Shard{0, 2});
    EXPECT_THROW((void)load_journal(journal_path(dir.path), spec, expand_grid(spec)),
                 support::ConfigError);
}

TEST(Checkpoint, JournalProgressProtectsOnlyIncompleteRunsOfTheSameSpec) {
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    TempDir dir("test_ckpt_progress");
    const std::string path = journal_path(dir.path);

    EXPECT_EQ(journal_progress("no/such/journal.jsonl", spec), 0u);

    // Incomplete run of this spec: progress worth protecting.
    const std::vector<CellResult> partial(results.begin(), results.begin() + 2);
    write_journal(dir.path, spec, results.size(), partial);
    EXPECT_EQ(journal_progress(path, spec), 2u);

    // Same journal against a different spec: not this campaign's progress.
    CampaignSpec other = tiny_spec();
    other.base_seed += 1;
    EXPECT_EQ(journal_progress(path, other), 0u);

    // A complete journal is a finished run — safe to redo, nothing lost.
    write_journal(dir.path, spec, results.size(), results);
    EXPECT_EQ(journal_progress(path, spec), 0u);

    // A kill mid-final-record must NOT masquerade as complete: the torn
    // fragment is not a record, so the remaining progress is protected.
    {
        std::string text = slurp(path);
        text.resize(text.size() - 30);
        std::ofstream file(path, std::ios::binary | std::ios::trunc);
        file << text;
    }
    EXPECT_EQ(journal_progress(path, spec), results.size() - 1);

    // A complete *shard* journal likewise (its slice is done).
    const Shard shard{0, 2};
    std::vector<CellResult> slice;
    for (const CellResult& result : results) {
        if (shard.contains(result.cell.index)) slice.push_back(result);
    }
    write_journal(dir.path, spec, results.size(), slice, shard);
    EXPECT_EQ(journal_progress(path, spec), 0u);
    // ... but an incomplete shard journal is protected.
    slice.pop_back();
    write_journal(dir.path, spec, results.size(), slice, shard);
    EXPECT_EQ(journal_progress(path, spec), slice.size());
}

// ---------------------------------------------------------- resume, merge

TEST(Checkpoint, ResumeFromPartialJournalIsByteIdentical) {
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    TempDir dir("test_ckpt_resume");
    // Only the first k cells made it to the journal before the "crash".
    const std::vector<CellResult> partial(results.begin(), results.begin() + 2);
    write_journal(dir.path, spec, results.size(), partial);

    const std::vector<CampaignCell> grid = expand_grid(spec);
    LoadedJournal loaded = load_journal(journal_path(dir.path), spec, grid);
    ASSERT_EQ(loaded.cells.size(), 2u);

    // Re-run exactly the missing cells, as `--resume` does.
    std::vector<bool> have(grid.size(), false);
    for (const CellResult& result : loaded.cells) have[result.cell.index] = true;
    std::vector<CampaignCell> todo;
    for (const CampaignCell& cell : grid) {
        if (!have[cell.index]) todo.push_back(cell);
    }
    CampaignRunnerOptions options;
    options.log_progress = false;
    std::vector<CellResult> merged = CampaignRunner(options).run_cells(std::move(todo));
    for (CellResult& result : loaded.cells) merged.push_back(std::move(result));
    std::sort(merged.begin(), merged.end(), [](const CellResult& a, const CellResult& b) {
        return a.cell.index < b.cell.index;
    });

    EXPECT_EQ(campaign_results_to_json(spec, merged).pretty(),
              campaign_results_to_json(spec, results).pretty());
}

TEST(Checkpoint, ThreeShardMergeIsByteIdenticalToSingleRun) {
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    ASSERT_GE(results.size(), 3u);

    const TempDir d1("test_ckpt_merge_shard1");
    const TempDir d2("test_ckpt_merge_shard2");
    const TempDir d3("test_ckpt_merge_shard3");
    const std::string dir_paths[] = {d1.path, d2.path, d3.path};
    std::vector<std::string> journals;
    for (std::size_t s = 0; s < 3; ++s) {
        const Shard shard{s, 3};
        std::vector<CellResult> slice;
        for (const CellResult& result : results) {
            if (shard.contains(result.cell.index)) slice.push_back(result);
        }
        write_journal(dir_paths[s], spec, results.size(), slice, shard);
        journals.push_back(journal_path(dir_paths[s]));
    }

    const std::vector<CellResult> merged = merge_journals(journals, spec);
    ASSERT_EQ(merged.size(), results.size());
    EXPECT_EQ(campaign_results_to_json(spec, merged).pretty(),
              campaign_results_to_json(spec, results).pretty());
    EXPECT_EQ(campaign_results_to_csv(merged), campaign_results_to_csv(results));
}

TEST(Checkpoint, MergeRejectsOverlapAndIncompleteCoverage) {
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    TempDir a("test_ckpt_merge_a");
    TempDir b("test_ckpt_merge_b");
    const Shard first{0, 2};
    const Shard second{1, 2};
    std::vector<CellResult> slice_a;
    std::vector<CellResult> slice_b;
    for (const CellResult& result : results) {
        (first.contains(result.cell.index) ? slice_a : slice_b).push_back(result);
    }
    write_journal(a.path, spec, results.size(), slice_a, first);
    write_journal(b.path, spec, results.size(), slice_b, second);

    // Overlap: the same shard twice.
    EXPECT_THROW((void)merge_journals({journal_path(a.path), journal_path(a.path)}, spec),
                 support::ConfigError);
    // Incomplete: one shard missing.
    EXPECT_THROW((void)merge_journals({journal_path(a.path)}, spec),
                 support::ConfigError);
    // Both present: complete.
    const auto merged = merge_journals({journal_path(a.path), journal_path(b.path)}, spec);
    EXPECT_EQ(merged.size(), results.size());
}

// ------------------------------------------------------ injected failures

TEST(Checkpoint, RecoveryAtEveryShortWriteBoundary) {
    // Property: whatever byte count an interrupted append manages to get
    // out — 0 bytes, half a record, everything but the newline — the
    // reader recovers every earlier record and drops exactly the torn
    // tail. journal.append_short_write=err(K) truly truncates the write,
    // so each K exercises a real on-disk torn journal.
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    ASSERT_GE(results.size(), 2u);
    const std::string torn_line = cell_record_to_json(results[1]).dump();

    for (std::size_t keep = 0; keep <= torn_line.size(); ++keep) {
        TempDir dir("test_ckpt_short_write");
        {
            CheckpointJournal journal(dir.path, spec, results.size());
            journal.append(results[0]);
            support::failpoint::arm("journal.append_short_write=err(" +
                                    std::to_string(keep) + ")#1");
            EXPECT_THROW(journal.append(results[1]), support::Error) << keep;
            support::failpoint::disarm();
        }
        // The file really is torn at byte `keep` of the failed record.
        const std::string text = slurp(journal_path(dir.path));
        ASSERT_TRUE(text.size() > torn_line.size())
            << "journal lost its intact prefix at boundary " << keep;
        EXPECT_EQ(text.substr(text.size() - keep), torn_line.substr(0, keep));

        const LoadedJournal loaded =
            load_journal(journal_path(dir.path), spec, expand_grid(spec));
        ASSERT_EQ(loaded.cells.size(), 1u) << "boundary " << keep;
        EXPECT_EQ(loaded.cells[0].cell.index, results[0].cell.index);
        // keep == 0 means the interrupted write got nothing out: the
        // journal ends cleanly and there is no tail to drop.
        EXPECT_EQ(loaded.dropped_torn_tail, keep > 0) << "boundary " << keep;

        // And the journal is recoverable the way resume does it: compact
        // the surviving lines atomically, reopen, append — after which
        // nothing is torn.
        std::string compacted;
        for (const std::string& line : loaded.lines) compacted += line + "\n";
        support::atomic_write(journal_path(dir.path), compacted);
        CheckpointJournal journal = CheckpointJournal::reopen(dir.path);
        journal.append(results[1]);
        const LoadedJournal healed =
            load_journal(journal_path(dir.path), spec, expand_grid(spec));
        EXPECT_EQ(healed.cells.size(), 2u) << "boundary " << keep;
        EXPECT_FALSE(healed.dropped_torn_tail) << "boundary " << keep;
    }
}

TEST(Checkpoint, InjectedFsyncFailureFailsTheAppendLoudly) {
    // The fsync fires after the record hit the page cache: the writer
    // must report failure (durability unknown) even though a later
    // reader may see the record intact — recovery tolerates both.
    const CampaignSpec spec = tiny_spec();
    const auto& results = shared_results();
    TempDir dir("test_ckpt_fsync_fail");
    {
        CheckpointJournal journal(dir.path, spec, results.size());
        support::failpoint::arm("journal.append_fsync=err#1");
        EXPECT_THROW(journal.append(results[0]), support::Error);
        support::failpoint::disarm();
        journal.append(results[0]);  // budget spent: the retry lands
    }
    // The failed append's bytes made it out (only durability was in
    // doubt), so the retry duplicated the record — which load_journal
    // reports loudly. This is exactly why the fleet worker dies instead
    // of retrying after a failed append.
    EXPECT_THROW(
        (void)load_journal(journal_path(dir.path), spec, expand_grid(spec)),
        support::ConfigError);
}
