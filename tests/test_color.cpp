// Tests for color spaces, ΔE metrics, dyes and the Beer–Lambert mixer.
#include <gtest/gtest.h>

#include <cmath>

#include "color/dye.hpp"
#include "color/lab.hpp"
#include "color/mixing.hpp"
#include "color/rgb.hpp"
#include "support/common.hpp"
#include "support/random.hpp"
#include "support/units.hpp"

using namespace sdl::color;
using sdl::support::Rng;
using sdl::support::Volume;

// ------------------------------------------------------------ rgb / srgb

TEST(Rgb, TransferFunctionEndpoints) {
    EXPECT_DOUBLE_EQ(srgb_to_linear(0.0), 0.0);
    EXPECT_NEAR(srgb_to_linear(1.0), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(linear_to_srgb(0.0), 0.0);
    EXPECT_NEAR(linear_to_srgb(1.0), 1.0, 1e-12);
}

TEST(Rgb, TransferRoundTrip) {
    for (int i = 0; i <= 255; ++i) {
        const double e = i / 255.0;
        EXPECT_NEAR(linear_to_srgb(srgb_to_linear(e)), e, 1e-12);
    }
}

TEST(Rgb, EightBitRoundTrip) {
    // to_srgb8(to_linear(c)) must be the identity on all 8-bit gray values
    // and a healthy sample of colors.
    for (int i = 0; i <= 255; ++i) {
        const auto v = static_cast<std::uint8_t>(i);
        const Rgb8 c{v, v, v};
        EXPECT_EQ(to_srgb8(to_linear(c)), c);
    }
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const Rgb8 c{static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256})),
                     static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256})),
                     static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256}))};
        EXPECT_EQ(to_srgb8(to_linear(c)), c);
    }
}

TEST(Rgb, DistanceProperties) {
    const Rgb8 a{120, 120, 120};
    const Rgb8 b{130, 110, 120};
    EXPECT_DOUBLE_EQ(rgb_distance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(rgb_distance(a, b), rgb_distance(b, a));
    EXPECT_NEAR(rgb_distance(a, b), std::sqrt(200.0), 1e-12);
    EXPECT_DOUBLE_EQ(rgb_distance({0, 0, 0}, {255, 255, 255}), std::sqrt(3.0) * 255);
}

TEST(Rgb, Formatting) {
    const Rgb8 c{120, 120, 120};
    EXPECT_EQ(c.str(), "rgb(120,120,120)");
    EXPECT_EQ(c.hex(), "#787878");
}

// ------------------------------------------------------------- lab / xyz

TEST(Lab, WhitePointMapsToL100) {
    const Lab white = to_lab({255, 255, 255});
    EXPECT_NEAR(white.l, 100.0, 0.01);
    EXPECT_NEAR(white.a, 0.0, 0.01);
    EXPECT_NEAR(white.b, 0.0, 0.01);
}

TEST(Lab, BlackMapsToL0) {
    const Lab black = to_lab({0, 0, 0});
    EXPECT_NEAR(black.l, 0.0, 1e-9);
}

TEST(Lab, XyzRoundTrip) {
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const LinearRgb c{rng.uniform(), rng.uniform(), rng.uniform()};
        const Xyz xyz = to_xyz(c);
        const LinearRgb back = xyz_to_linear(xyz);
        // The published sRGB<->XYZ matrices are 7-digit constants, so the
        // round-trip is exact only to ~1e-6.
        EXPECT_NEAR(back.r, c.r, 1e-6);
        EXPECT_NEAR(back.g, c.g, 1e-6);
        EXPECT_NEAR(back.b, c.b, 1e-6);
    }
}

TEST(Lab, LabRoundTrip) {
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const LinearRgb c{rng.uniform(), rng.uniform(), rng.uniform()};
        const Xyz xyz = to_xyz(c);
        const Xyz back = lab_to_xyz(xyz_to_lab(xyz));
        EXPECT_NEAR(back.x, xyz.x, 1e-9);
        EXPECT_NEAR(back.y, xyz.y, 1e-9);
        EXPECT_NEAR(back.z, xyz.z, 1e-9);
    }
}

TEST(DeltaE, IdentityAndSymmetry) {
    const Lab a = to_lab({120, 120, 120});
    const Lab b = to_lab({140, 100, 130});
    EXPECT_DOUBLE_EQ(delta_e76(a, a), 0.0);
    EXPECT_DOUBLE_EQ(delta_e94(a, a), 0.0);
    EXPECT_NEAR(delta_e2000(a, a), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(delta_e76(a, b), delta_e76(b, a));
    EXPECT_NEAR(delta_e2000(a, b), delta_e2000(b, a), 1e-12);
}

// Reference pairs from Sharma, Wu & Dalal's CIEDE2000 test data.
struct De2000Case {
    Lab lab1;
    Lab lab2;
    double expected;
};

class DeltaE2000Reference : public ::testing::TestWithParam<De2000Case> {};

TEST_P(DeltaE2000Reference, MatchesPublishedValue) {
    const auto& c = GetParam();
    EXPECT_NEAR(delta_e2000(c.lab1, c.lab2), c.expected, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    SharmaPairs, DeltaE2000Reference,
    ::testing::Values(
        De2000Case{{50.0, 2.6772, -79.7751}, {50.0, 0.0, -82.7485}, 2.0425},
        De2000Case{{50.0, 3.1571, -77.2803}, {50.0, 0.0, -82.7485}, 2.8615},
        De2000Case{{50.0, 2.8361, -74.0200}, {50.0, 0.0, -82.7485}, 3.4412},
        De2000Case{{50.0, -1.3802, -84.2814}, {50.0, 0.0, -82.7485}, 1.0000},
        De2000Case{{50.0, 2.5000, 0.0}, {50.0, 0.0, -2.5}, 4.3065},
        De2000Case{{50.0, 2.5, 0.0}, {73.0, 25.0, -18.0}, 27.1492},
        De2000Case{{50.0, 2.5, 0.0}, {50.0, 3.2592, 0.335}, 1.0000},
        De2000Case{{2.0776, 0.0795, -1.135}, {0.9033, -0.0636, -0.5514}, 0.9082}));

TEST(DeltaE, De94LessOrEqualDe76ForChromaticColors) {
    // CIE94 divides chroma/hue differences by S factors >= 1.
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const Lab a{rng.uniform(20, 80), rng.uniform(-60, 60), rng.uniform(-60, 60)};
        const Lab b{rng.uniform(20, 80), rng.uniform(-60, 60), rng.uniform(-60, 60)};
        EXPECT_LE(delta_e94(a, b), delta_e76(a, b) + 1e-9);
    }
}

// ------------------------------------------------------------------ dyes

TEST(Dye, CmykLibraryLayout) {
    const DyeLibrary lib = DyeLibrary::cmyk();
    EXPECT_EQ(lib.count(), 4u);
    EXPECT_EQ(lib.dye(0).name, "cyan");
    EXPECT_EQ(lib.index_of("black"), 3u);
    EXPECT_THROW((void)lib.index_of("mauve"), sdl::support::ConfigError);
}

TEST(Dye, CyanAbsorbsRedMost) {
    const DyeLibrary lib = DyeLibrary::cmyk();
    const auto& cyan = lib.dye(lib.index_of("cyan")).absorptivity;
    EXPECT_GT(cyan[0], cyan[1]);
    EXPECT_GT(cyan[1], cyan[2]);
}

// ---------------------------------------------------------------- mixing

TEST(Mixer, EmptyWellIsWhite) {
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    const std::vector<double> none{0, 0, 0, 0};
    EXPECT_EQ(mixer.mix_ratios(none), (Rgb8{255, 255, 255}));
}

TEST(Mixer, PureBlackIsVeryDark) {
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    const std::vector<double> black{0, 0, 0, 1};
    const Rgb8 c = mixer.mix_ratios(black);
    EXPECT_LT(c.r, 60);
    EXPECT_LT(c.g, 60);
    EXPECT_LT(c.b, 60);
    EXPECT_EQ(c.r, c.g);
    EXPECT_EQ(c.g, c.b);
}

TEST(Mixer, CyanLooksCyan) {
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    const std::vector<double> cyan{1, 0, 0, 0};
    const Rgb8 c = mixer.mix_ratios(cyan);
    EXPECT_LT(c.r, c.g);
    EXPECT_LT(c.g, c.b);
}

TEST(Mixer, ScaleInvarianceOfRatios) {
    // Color depends only on mixing ratios, not absolute volumes.
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    const std::vector<double> a{0.2, 0.3, 0.1, 0.4};
    const std::vector<double> b{2.0, 3.0, 1.0, 4.0};
    EXPECT_EQ(mixer.mix_ratios(a), mixer.mix_ratios(b));
}

TEST(Mixer, VolumeOverloadMatchesRatioOverload) {
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    const std::vector<Volume> vols{Volume::microliters(20), Volume::microliters(30),
                                   Volume::microliters(10), Volume::microliters(40)};
    const std::vector<double> ratios{0.2, 0.3, 0.1, 0.4};
    EXPECT_EQ(mixer.mix(vols), mixer.mix_ratios(ratios));
}

TEST(Mixer, MoreBlackIsMonotonicallyDarker) {
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    int prev_sum = 3 * 255 + 1;
    for (double k = 0.0; k <= 1.0; k += 0.1) {
        const std::vector<double> ratios{(1 - k) / 3, (1 - k) / 3, (1 - k) / 3, k};
        const Rgb8 c = mixer.mix_ratios(ratios);
        const int sum = c.r + c.g + c.b;
        EXPECT_LE(sum, prev_sum);
        prev_sum = sum;
    }
}

TEST(Mixer, PaperTargetIsExactlyReachable) {
    // The Figure-4 target RGB(120,120,120) must lie inside the dye gamut;
    // the analytic inverse should find ratios that reproduce it exactly.
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    const Rgb8 target{120, 120, 120};
    const auto ratios = mixer.invert_target(target);
    ASSERT_TRUE(ratios.has_value());
    double sum = 0.0;
    for (const double r : *ratios) {
        EXPECT_GE(r, 0.0);
        sum += r;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_LE(rgb_distance(mixer.mix_ratios(*ratios), target), 1.0);
}

TEST(Mixer, OutOfGamutTargetIsRejected) {
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    // Saturated pure red is not reachable with C/M/Y/K subtractive dyes.
    EXPECT_FALSE(mixer.invert_target({255, 0, 0}).has_value());
    // Pitch black is darker than the darkest achievable mixture.
    EXPECT_FALSE(mixer.invert_target({0, 0, 0}).has_value());
}

TEST(Mixer, NegativeFractionThrows) {
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    const std::vector<double> bad{-0.1, 0.5, 0.3, 0.3};
    EXPECT_THROW((void)mixer.mix_ratios(bad), sdl::support::LogicError);
}

// Property sweep: the analytic inverse round-trips across the gray ramp
// that is inside the gamut.
class MixerGrayInvert : public ::testing::TestWithParam<int> {};

TEST_P(MixerGrayInvert, InverseReproducesGray) {
    const auto v = static_cast<std::uint8_t>(GetParam());
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    const Rgb8 target{v, v, v};
    const auto ratios = mixer.invert_target(target);
    ASSERT_TRUE(ratios.has_value()) << "gray " << int(v) << " should be reachable";
    EXPECT_LE(rgb_distance(mixer.mix_ratios(*ratios), target), 1.0);
}

INSTANTIATE_TEST_SUITE_P(GrayRamp, MixerGrayInvert,
                         ::testing::Values(90, 100, 110, 120, 130, 140, 150, 160));
