// Tests for experiment-configuration YAML I/O (the CLI's input format).
#include <gtest/gtest.h>

#include <fstream>

#include "core/colorpicker.hpp"
#include "core/config_io.hpp"
#include "linalg/backend.hpp"
#include "support/common.hpp"
#include "support/yaml.hpp"

using namespace sdl;
using namespace sdl::core;

TEST(ConfigIo, ParsesFullDocument) {
    const char* text = R"(experiment:
  target: [10, 200, 30]
  total_samples: 64
  batch_size: 4
  solver: bayesian
  objective: de2000
  seed: 99
  stop_threshold: 2.5
  id: my_exp
  date: 2024-01-01
plate:
  rows: 4
  cols: 6
well_volume_ul: 120.5
faults:
  command_rejection_prob: 0.05
retry:
  max_attempts: 3
  human_rescue: false
)";
    const ColorPickerConfig config = config_from_yaml(text);
    EXPECT_EQ(config.target, (color::Rgb8{10, 200, 30}));
    EXPECT_EQ(config.total_samples, 64);
    EXPECT_EQ(config.batch_size, 4);
    EXPECT_EQ(config.solver, "bayesian");
    EXPECT_EQ(config.objective, Objective::DeltaE2000);
    EXPECT_EQ(config.seed, 99u);
    EXPECT_DOUBLE_EQ(config.stop_threshold, 2.5);
    EXPECT_EQ(config.experiment_id, "my_exp");
    EXPECT_EQ(config.date, "2024-01-01");
    EXPECT_EQ(config.plate_rows, 4);
    EXPECT_EQ(config.plate_cols, 6);
    EXPECT_DOUBLE_EQ(config.well_volume.to_microliters(), 120.5);
    EXPECT_DOUBLE_EQ(config.faults.command_rejection_prob, 0.05);
    EXPECT_EQ(config.retry.max_attempts, 3);
    EXPECT_FALSE(config.retry.human_rescue);
}

TEST(ConfigIo, DefaultsApplyForOmittedSections) {
    const ColorPickerConfig config = config_from_yaml("experiment:\n  seed: 3\n");
    EXPECT_EQ(config.target, (color::Rgb8{120, 120, 120}));
    EXPECT_EQ(config.total_samples, 128);
    EXPECT_EQ(config.batch_size, 1);
    EXPECT_EQ(config.solver, "genetic");
    EXPECT_EQ(config.objective, Objective::RgbEuclidean);
    EXPECT_EQ(config.plate_rows, 8);
    EXPECT_EQ(config.plate_cols, 12);
}

TEST(ConfigIo, RejectsUnknownKeys) {
    EXPECT_THROW((void)config_from_yaml("experiment:\n  tartget: [1, 2, 3]\n"),
                 support::ConfigError);
    EXPECT_THROW((void)config_from_yaml("experimnt:\n  seed: 1\n"), support::ConfigError);
    EXPECT_THROW((void)config_from_yaml("plate:\n  depth: 2\n"), support::ConfigError);
}

TEST(ConfigIo, RejectsBadValues) {
    EXPECT_THROW((void)config_from_yaml("experiment:\n  target: [300, 0, 0]\n"),
                 support::ConfigError);
    EXPECT_THROW((void)config_from_yaml("experiment:\n  target: [1, 2]\n"),
                 support::ConfigError);
    EXPECT_THROW((void)config_from_yaml("experiment:\n  objective: hsv\n"),
                 support::ConfigError);
    EXPECT_THROW((void)config_from_yaml("just a scalar"), support::Error);
}

TEST(ConfigIo, RoundTripThroughYaml) {
    ColorPickerConfig original;
    original.target = {30, 60, 90};
    original.total_samples = 42;
    original.batch_size = 6;
    original.solver = "pattern";
    original.objective = Objective::DeltaE76;
    original.seed = 77;
    original.experiment_id = "round_trip";
    original.plate_rows = 2;
    original.plate_cols = 3;
    original.faults.command_rejection_prob = 0.125;

    const ColorPickerConfig back = config_from_yaml(config_to_yaml(original));
    EXPECT_EQ(back.target, original.target);
    EXPECT_EQ(back.total_samples, 42);
    EXPECT_EQ(back.batch_size, 6);
    EXPECT_EQ(back.solver, "pattern");
    EXPECT_EQ(back.objective, Objective::DeltaE76);
    EXPECT_EQ(back.seed, 77u);
    EXPECT_EQ(back.experiment_id, "round_trip");
    EXPECT_EQ(back.plate_rows, 2);
    EXPECT_DOUBLE_EQ(back.faults.command_rejection_prob, 0.125);
}

TEST(ConfigIo, LinalgBackendRoundTripsAndRejectsUnknown) {
    // The default tracks the process default (strict, unless the
    // SDLBENCH_LINALG_BACKEND env hook says otherwise — CI's
    // backend-matrix leg runs this very test under `fast`), and a
    // strict config OMITS the key on dump — the emission rule that
    // keeps reference-run YAML byte-identical across releases.
    ColorPickerConfig config;
    EXPECT_EQ(config.linalg_backend, sdl::linalg::default_backend_name());
    config.linalg_backend = "strict";
    EXPECT_EQ(config_to_yaml(config).find("linalg_backend"), std::string::npos);

    // A non-default backend is written and survives the round trip.
    config.linalg_backend = "fast";
    const std::string dumped = config_to_yaml(config);
    EXPECT_NE(dumped.find("linalg_backend: fast"), std::string::npos);
    EXPECT_EQ(config_from_yaml(dumped).linalg_backend, "fast");
    EXPECT_EQ(config_from_yaml("linalg_backend: strict\n").linalg_backend, "strict");

    // Unknown names fail loudly at parse time, naming the valid set.
    try {
        (void)config_from_yaml("linalg_backend: blas\n");
        FAIL() << "unknown linalg_backend must throw";
    } catch (const support::ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("blas"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("strict, fast"), std::string::npos);
    }
    // finalize_config re-validates configs built programmatically.
    ColorPickerConfig bad;
    bad.linalg_backend = "gpu";
    EXPECT_THROW((void)finalize_config(std::move(bad)), support::ConfigError);
}

TEST(ConfigIo, LoadsFromFile) {
    const std::string path = ::testing::TempDir() + "/sdl_experiment.yaml";
    {
        std::ofstream file(path);
        file << "experiment:\n  total_samples: 9\n  batch_size: 3\n";
    }
    const ColorPickerConfig config = config_from_file(path);
    EXPECT_EQ(config.total_samples, 9);
    EXPECT_EQ(config.batch_size, 3);
    EXPECT_THROW((void)config_from_file("/nonexistent/exp.yaml"), support::Error);
}

TEST(ConfigIo, DocRoundTripMatchesYamlRoundTrip) {
    // config_from_doc / config_to_doc are the document-level halves that
    // campaign files reuse for their base-config section.
    ColorPickerConfig original;
    original.target = {5, 10, 15};
    original.solver = "anneal";
    original.objective = Objective::DeltaE2000;
    original.total_samples = 10;
    original.batch_size = 5;
    original.seed = 3;

    const support::json::Value doc = config_to_doc(original);
    const ColorPickerConfig back = config_from_doc(doc);
    EXPECT_EQ(back.target, original.target);
    EXPECT_EQ(back.solver, original.solver);
    EXPECT_EQ(back.objective, original.objective);
    EXPECT_EQ(back.total_samples, original.total_samples);
    EXPECT_EQ(back.batch_size, original.batch_size);
    EXPECT_EQ(back.seed, original.seed);
    // The YAML path is exactly dump(doc) -> parse -> from_doc.
    EXPECT_EQ(config_to_yaml(original), support::yaml::dump(doc));
    EXPECT_THROW((void)config_from_doc(support::json::Value("scalar")),
                 support::ConfigError);
}

TEST(ConfigIo, ObjectiveStringsRoundTrip) {
    for (const Objective o :
         {Objective::RgbEuclidean, Objective::DeltaE76, Objective::DeltaE2000}) {
        EXPECT_EQ(objective_from_string(objective_to_string(o)), o);
    }
    EXPECT_THROW((void)objective_from_string("hsv"), support::ConfigError);
}

TEST(ConfigIo, ParsedConfigActuallyRuns) {
    ColorPickerConfig config = config_from_yaml(
        "experiment:\n"
        "  total_samples: 8\n"
        "  batch_size: 4\n"
        "  solver: anneal\n"
        "  seed: 13\n");
    ColorPickerApp app(config);
    const ExperimentOutcome outcome = app.run();
    EXPECT_EQ(outcome.samples.size(), 8u);
}
