// End-to-end tests of the color-picker application: the full closed loop
// (solver -> robots -> camera -> vision -> publish -> solver) on the
// simulated workcell, including the paper-calibration checks.
#include <gtest/gtest.h>

#include "core/colorpicker.hpp"
#include "core/presets.hpp"
#include "core/workflows.hpp"
#include "support/common.hpp"

using namespace sdl;
using namespace sdl::core;

TEST(Workflows, MatchFigure2Structure) {
    EXPECT_EQ(wf_newplate().steps().size(), 3u);
    EXPECT_EQ(wf_mixcolor().steps().size(), 4u);
    EXPECT_EQ(wf_trashplate().steps().size(), 2u);
    EXPECT_EQ(wf_replenish().steps().size(), 1u);
    EXPECT_EQ(wf_mixcolor().steps()[1].name, kMixStepName);
    EXPECT_EQ(all_workflows().size(), 4u);
    // Module sequence of the mix workflow: pf400, ot2, pf400, camera.
    EXPECT_EQ(wf_mixcolor().steps()[0].module, "pf400");
    EXPECT_EQ(wf_mixcolor().steps()[1].module, "ot2");
    EXPECT_EQ(wf_mixcolor().steps()[2].module, "pf400");
    EXPECT_EQ(wf_mixcolor().steps()[3].module, "camera");
}

TEST(Objective, MetricsAgreeOnIdentityAndOrder) {
    const color::Rgb8 target{120, 120, 120};
    const color::Rgb8 close{122, 118, 121};
    const color::Rgb8 far{200, 60, 30};
    for (const Objective obj :
         {Objective::RgbEuclidean, Objective::DeltaE76, Objective::DeltaE2000}) {
        EXPECT_NEAR(evaluate_objective(obj, target, target), 0.0, 1e-9);
        EXPECT_LT(evaluate_objective(obj, close, target),
                  evaluate_objective(obj, far, target));
    }
}

TEST(Runtime, DrivesAtMostOneExperiment) {
    WorkcellRuntime runtime(preset_quickstart(5));
    EXPECT_FALSE(runtime.claimed());
    ColorPickerApp app(runtime);
    EXPECT_TRUE(runtime.claimed());
    // A second app on the same (cumulative-state) workcell must fail
    // loudly instead of silently corrupting metrics.
    EXPECT_THROW(ColorPickerApp{runtime}, support::LogicError);
}

TEST(Runtime, BorrowedRuntimeMatchesOwnedRuntime) {
    ColorPickerConfig config = preset_quickstart(21);
    config.total_samples = 8;
    config.batch_size = 4;

    WorkcellRuntime runtime(config);
    ColorPickerApp borrowed(runtime);
    const ExperimentOutcome a = borrowed.run();
    ColorPickerApp owned(config);
    const ExperimentOutcome b = owned.run();

    EXPECT_EQ(a.experiment_id, b.experiment_id);
    EXPECT_EQ(a.samples.size(), b.samples.size());
    EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
    EXPECT_EQ(a.best_color, b.best_color);
}

TEST(App, QuickstartRunsToCompletion) {
    ColorPickerApp app(preset_quickstart(7));
    const ExperimentOutcome outcome = app.run();

    EXPECT_EQ(outcome.samples.size(), 24u);
    EXPECT_EQ(outcome.batches_run, 3);
    EXPECT_EQ(outcome.plates_used, 1);
    EXPECT_EQ(outcome.metrics.total_colors, 24);
    EXPECT_GT(outcome.best_score, 0.0);
    EXPECT_LT(outcome.best_score, 40.0);

    // best_so_far is monotone non-increasing; elapsed strictly increasing
    // across batches.
    for (std::size_t i = 1; i < outcome.samples.size(); ++i) {
        EXPECT_LE(outcome.samples[i].best_so_far, outcome.samples[i - 1].best_so_far);
        EXPECT_GE(outcome.samples[i].elapsed_minutes, outcome.samples[i - 1].elapsed_minutes);
    }

    // Portal: one experiment header + one record per batch.
    EXPECT_EQ(app.portal().experiment_count(), 1u);
    EXPECT_EQ(app.portal().run_count(), 3u);
    const auto run2 = app.portal().find_run(outcome.experiment_id, 2);
    ASSERT_TRUE(run2.has_value());
    EXPECT_EQ(run2->samples.size(), 8u);

    // Event log captured the workflows (newplate + 3 mixcolor + trash).
    EXPECT_EQ(app.event_log().workflows().size(), 5u);
}

TEST(App, DeterministicForEqualSeeds) {
    ColorPickerApp app_a(preset_quickstart(42));
    ColorPickerApp app_b(preset_quickstart(42));
    const ExperimentOutcome a = app_a.run();
    const ExperimentOutcome b = app_b.run();
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].measured, b.samples[i].measured) << "sample " << i;
        EXPECT_DOUBLE_EQ(a.samples[i].score, b.samples[i].score);
        EXPECT_DOUBLE_EQ(a.samples[i].elapsed_minutes, b.samples[i].elapsed_minutes);
    }
    EXPECT_DOUBLE_EQ(a.best_score, b.best_score);

    ColorPickerApp app_c(preset_quickstart(43));
    const ExperimentOutcome c = app_c.run();
    bool any_different = false;
    for (std::size_t i = 0; i < std::min(a.samples.size(), c.samples.size()); ++i) {
        if (!(a.samples[i].measured == c.samples[i].measured)) any_different = true;
    }
    EXPECT_TRUE(any_different);
}

TEST(App, EarlyStopOnThreshold) {
    ColorPickerConfig config = preset_quickstart(11);
    config.total_samples = 64;
    config.stop_threshold = 60.0;  // trivially reachable
    ColorPickerApp app(config);
    const ExperimentOutcome outcome = app.run();
    EXPECT_TRUE(outcome.reached_threshold);
    EXPECT_LT(outcome.samples.size(), 64u);
    EXPECT_LE(outcome.best_score, 60.0);
}

TEST(App, PlateSwapWhenFull) {
    ColorPickerConfig config = preset_quickstart(13);
    config.plate_rows = 2;
    config.plate_cols = 4;  // 8-well plates
    config.batch_size = 4;
    config.total_samples = 24;  // needs 3 plates
    ColorPickerApp app(config);
    const ExperimentOutcome outcome = app.run();
    EXPECT_EQ(outcome.plates_used, 3);
    // trashplate ran twice mid-run plus once at teardown.
    int trash_runs = 0;
    for (const auto& wf : app.event_log().workflows()) {
        if (wf.name == "cp_wf_trashplate") ++trash_runs;
    }
    EXPECT_EQ(trash_runs, 3);
    EXPECT_EQ(outcome.samples.size(), 24u);
}

TEST(App, ReplenishesWhenReservoirsRunLow) {
    ColorPickerConfig config = preset_quickstart(17);
    config.ot2.reservoir_capacity = support::Volume::microliters(700.0);
    config.total_samples = 32;
    config.batch_size = 8;
    ColorPickerApp app(config);
    const ExperimentOutcome outcome = app.run();
    EXPECT_GE(outcome.replenishes, 1);
    EXPECT_EQ(outcome.samples.size(), 32u);
    int replenish_runs = 0;
    for (const auto& wf : app.event_log().workflows()) {
        if (wf.name == "cp_wf_replenish") ++replenish_runs;
    }
    EXPECT_EQ(replenish_runs, outcome.replenishes);
}

TEST(App, SurvivesCommandRejections) {
    ColorPickerConfig config = preset_quickstart(19);
    config.faults.command_rejection_prob = 0.25;
    ColorPickerApp app(config);
    const ExperimentOutcome outcome = app.run();
    EXPECT_EQ(outcome.samples.size(), 24u);
    // Rejections were logged but every command eventually succeeded.
    int rejected = 0;
    for (const auto& step : app.event_log().steps()) {
        if (step.status == wei::ActionStatus::Rejected) ++rejected;
    }
    EXPECT_GT(rejected, 0);
    EXPECT_EQ(outcome.metrics.interventions, 0);  // retries were enough
}

TEST(App, VisionDiagnosticsAreHealthy) {
    ColorPickerApp app(preset_quickstart(23));
    const ExperimentOutcome outcome = app.run();
    // Grid alignment stays subpixel-ish on the synthetic frames.
    EXPECT_LT(outcome.mean_grid_residual_px, 3.0);
    // Early batches photograph mostly-empty plates: some wells must have
    // been rescued by the grid fit rather than seen by Hough.
    EXPECT_GT(outcome.wells_rescued_total, 0u);
}

TEST(App, BayesianSolverRunsInTheLoop) {
    ColorPickerConfig config = preset_quickstart(29);
    config.solver = "bayesian";
    config.total_samples = 16;
    config.batch_size = 8;
    ColorPickerApp app(config);
    const ExperimentOutcome outcome = app.run();
    EXPECT_EQ(outcome.samples.size(), 16u);
    EXPECT_LT(outcome.best_score, 60.0);
}

TEST(App, DeltaE2000ObjectiveRuns) {
    ColorPickerConfig config = preset_quickstart(31);
    config.objective = Objective::DeltaE2000;
    config.total_samples = 16;
    ColorPickerApp app(config);
    const ExperimentOutcome outcome = app.run();
    EXPECT_EQ(outcome.samples.size(), 16u);
    EXPECT_LT(outcome.best_score, 30.0);  // dE2000 scale is tighter than RGB
}

TEST(App, RetakesGlitchedFrames) {
    ColorPickerConfig config = preset_quickstart(41);
    config.camera.glitch_prob = 0.35;  // roughly one glitch per few frames
    ColorPickerApp app(config);
    const ExperimentOutcome outcome = app.run();
    EXPECT_EQ(outcome.samples.size(), 24u);
    EXPECT_GT(outcome.frame_retakes, 0);
    // Retake workflows appear in the event log.
    int retake_runs = 0;
    for (const auto& wf : app.event_log().workflows()) {
        if (wf.name == "cp_wf_retake") ++retake_runs;
    }
    EXPECT_EQ(retake_runs, outcome.frame_retakes);
    // More frames were captured than batches measured.
    EXPECT_GT(app.camera().frames_captured(),
              static_cast<std::int64_t>(outcome.batches_run));
}

TEST(App, PersistentGlitchAbortsAfterMaxRetakes) {
    ColorPickerConfig config = preset_quickstart(43);
    config.camera.glitch_prob = 1.0;  // every frame unusable
    ColorPickerApp app(config);
    EXPECT_THROW((void)app.run(), wei::WorkflowError);
}

TEST(App, RunIsSingleShot) {
    ColorPickerApp app(preset_quickstart(37));
    (void)app.run();
    EXPECT_THROW((void)app.run(), support::LogicError);
}

TEST(App, AbortsWhenPlateSupplyExhausted) {
    // "resources exhausted" is one of the paper's termination criteria;
    // an empty sciclops tower is a hard device failure surfaced as a
    // WorkflowError.
    ColorPickerConfig config = preset_quickstart(47);
    config.plate_rows = 1;
    config.plate_cols = 4;  // 4-well plates -> needs 6 plates for 24 samples
    config.batch_size = 4;
    config.sciclops.towers = 1;
    config.sciclops.plates_per_tower = 2;  // only 2 available
    ColorPickerApp app(config);
    EXPECT_THROW((void)app.run(), wei::WorkflowError);
}

TEST(App, RejectsInvalidConfig) {
    ColorPickerConfig config = preset_quickstart(1);
    config.batch_size = 0;
    EXPECT_THROW(ColorPickerApp{config}, support::LogicError);
    config = preset_quickstart(1);
    config.batch_size = 97;  // exceeds 96-well plate
    EXPECT_THROW(ColorPickerApp{config}, support::LogicError);
}

TEST(Figure4Shape, TotalTimeDecreasesWithBatchSize) {
    // The qualitative core of Figure 4, checked at a fast scale: for a
    // fixed sample budget, larger batches finish sooner (fewer protocol
    // overheads and pf400 round trips).
    double previous_minutes = 1e18;
    for (const int batch : {2, 4, 12}) {
        ColorPickerConfig config = preset_quickstart(3);
        config.total_samples = 24;
        config.batch_size = batch;
        config.experiment_id = "shape_B" + std::to_string(batch);
        ColorPickerApp app(config);
        const ExperimentOutcome outcome = app.run();
        EXPECT_LT(outcome.metrics.total_time.to_minutes(), previous_minutes)
            << "B=" << batch;
        previous_minutes = outcome.metrics.total_time.to_minutes();
    }
}

// ------------------------------------------------ paper calibration (B=1)

TEST(PaperCalibration, CommandCountMatchesTable1Exactly) {
    // Single-plate decomposition: 3 setup commands (sciclops, pf400,
    // barty) + 128 iterations x 3 robotic commands (pf400, ot2, pf400) =
    // 387 = the paper's CCWH. The camera is a sensor; the terminal
    // trashplate runs after the experiment's last measurement.
    ColorPickerApp app(preset_table1(1));
    const ExperimentOutcome outcome = app.run();
    EXPECT_EQ(outcome.metrics.commands_completed, 387u);
    EXPECT_EQ(outcome.metrics.total_colors, 128);
    EXPECT_EQ(outcome.plates_used, 1);

    // Timing calibration: within a percent of Table 1.
    EXPECT_NEAR(outcome.metrics.total_time.to_minutes(), 492.0, 492.0 * 0.02);
    EXPECT_NEAR(outcome.metrics.synthesis_time.to_minutes(), 310.0, 310.0 * 0.01);
    EXPECT_NEAR(outcome.metrics.transfer_time.to_minutes(), 182.0, 182.0 * 0.02);
    EXPECT_NEAR(outcome.metrics.time_per_color.to_minutes(), 3.84, 0.1);
    // "Data uploads occurred on average every 3 minutes and 48 seconds."
    EXPECT_NEAR(outcome.metrics.mean_upload_interval.to_seconds(), 230.0, 6.0);
    // Figure 4's B=1 end state: best score near or below ~10-12.
    EXPECT_LT(outcome.best_score, 15.0);
}

TEST(PaperCalibration, NinetySixWellVariantIsClose) {
    ColorPickerApp app(preset_table1_96well(1));
    const ExperimentOutcome outcome = app.run();
    // Two plates: +1 newplate (3 commands) + 1 mid-run trashplate (2).
    EXPECT_EQ(outcome.metrics.commands_completed, 392u);
    EXPECT_EQ(outcome.plates_used, 2);
    // Within ~2% of the paper's command count either way.
    EXPECT_NEAR(static_cast<double>(outcome.metrics.commands_completed), 387.0, 8.0);
}
