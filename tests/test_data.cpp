// Tests for the publication substrate: record schemas, the simulated
// Globus flow, the data portal (Figure 3 views), and run artifacts.
#include <gtest/gtest.h>

#include <filesystem>

#include "data/artifacts.hpp"
#include "data/flow.hpp"
#include "data/portal.hpp"
#include "data/record.hpp"
#include "des/simulation.hpp"
#include "support/common.hpp"

using namespace sdl::data;
using sdl::des::Simulation;
using sdl::support::Duration;
using sdl::support::TimePoint;
namespace json = sdl::support::json;

namespace {

SampleRecord make_sample(int index, double score, double best) {
    SampleRecord s;
    s.sample_index = index;
    s.well = index - 1;
    s.ratios = {0.25, 0.25, 0.25, 0.25};
    s.volumes_ul = {20, 20, 20, 20};
    s.measured = {118, 122, 119};
    s.score = score;
    s.best_score_so_far = best;
    s.measured_at = TimePoint::from_seconds(index * 230.0);
    return s;
}

RunRecord make_run(const std::string& experiment, int number, int n_samples) {
    RunRecord run;
    run.experiment_id = experiment;
    run.run_number = number;
    run.started = TimePoint::from_seconds((number - 1) * 3600.0);
    run.ended = TimePoint::from_seconds((number - 1) * 3600.0 + 2400.0);
    run.image_ref = "plate_frame_" + std::to_string(number) + ".ppm";
    run.best_score = 12.5;
    for (int i = 1; i <= n_samples; ++i) {
        run.samples.push_back(make_sample(i, 20.0 - i, 20.0 - i));
    }
    return run;
}

ExperimentRecord make_experiment(const std::string& id) {
    ExperimentRecord e;
    e.experiment_id = id;
    e.date = "2023-08-16";
    e.solver = "genetic";
    e.target = {120, 120, 120};
    e.batch_size = 15;
    e.total_samples = 180;
    e.run_count = 12;
    return e;
}

}  // namespace

// ---------------------------------------------------------------- records

TEST(Records, SampleJsonRoundTrip) {
    const SampleRecord original = make_sample(7, 11.5, 9.25);
    const SampleRecord back = SampleRecord::from_json(original.to_json());
    EXPECT_EQ(back.sample_index, 7);
    EXPECT_EQ(back.well, 6);
    EXPECT_EQ(back.ratios, original.ratios);
    EXPECT_EQ(back.measured, original.measured);
    EXPECT_DOUBLE_EQ(back.score, 11.5);
    EXPECT_DOUBLE_EQ(back.measured_at.to_seconds(), original.measured_at.to_seconds());
}

TEST(Records, RunJsonRoundTrip) {
    const RunRecord original = make_run("exp_a", 12, 15);
    const RunRecord back = RunRecord::from_json(original.to_json());
    EXPECT_EQ(back.run_number, 12);
    EXPECT_EQ(back.samples.size(), 15u);
    EXPECT_EQ(back.image_ref, "plate_frame_12.ppm");
    EXPECT_DOUBLE_EQ(back.best_score, 12.5);
}

TEST(Records, ExperimentJsonRoundTrip) {
    const ExperimentRecord original = make_experiment("exp_a");
    const ExperimentRecord back = ExperimentRecord::from_json(original.to_json());
    EXPECT_EQ(back.experiment_id, "exp_a");
    EXPECT_EQ(back.batch_size, 15);
    EXPECT_EQ(back.target, (sdl::color::Rgb8{120, 120, 120}));
}

// ----------------------------------------------------------------- portal

TEST(Portal, IngestAndQuery) {
    DataPortal portal;
    portal.ingest(make_experiment("exp_a").to_json());
    for (int run = 1; run <= 12; ++run) {
        portal.ingest(make_run("exp_a", run, 15).to_json());
    }
    EXPECT_EQ(portal.experiment_count(), 1u);
    EXPECT_EQ(portal.run_count(), 12u);
    EXPECT_TRUE(portal.find_experiment("exp_a").has_value());
    EXPECT_FALSE(portal.find_experiment("nope").has_value());
    EXPECT_EQ(portal.runs_of("exp_a").size(), 12u);
    ASSERT_TRUE(portal.find_run("exp_a", 12).has_value());
    EXPECT_EQ(portal.find_run("exp_a", 12)->samples.size(), 15u);
    EXPECT_FALSE(portal.find_run("exp_a", 13).has_value());
}

TEST(Portal, IngestIsIdempotentByIdentity) {
    DataPortal portal;
    portal.ingest(make_run("exp_a", 1, 5).to_json());
    portal.ingest(make_run("exp_a", 1, 15).to_json());  // re-publish, more samples
    EXPECT_EQ(portal.run_count(), 1u);
    EXPECT_EQ(portal.find_run("exp_a", 1)->samples.size(), 15u);
}

TEST(Portal, RejectsUnknownDocumentType) {
    DataPortal portal;
    json::Value doc = json::Value::object();
    doc.set("type", "mystery");
    EXPECT_THROW(portal.ingest(doc), sdl::support::Error);
}

TEST(Portal, SearchRunsByPredicate) {
    DataPortal portal;
    for (int run = 1; run <= 5; ++run) portal.ingest(make_run("exp_a", run, run).to_json());
    const auto big = portal.search_runs(
        [](const RunRecord& r) { return r.samples.size() >= 4; });
    EXPECT_EQ(big.size(), 2u);
}

TEST(Portal, SummaryViewMatchesFigure3Shape) {
    DataPortal portal;
    portal.ingest(make_experiment("color_picker_2023-08-16").to_json());
    for (int run = 1; run <= 12; ++run) {
        portal.ingest(make_run("color_picker_2023-08-16", run, 15).to_json());
    }
    const std::string view = portal.render_experiment_summary("color_picker_2023-08-16");
    // The headline sentence of Figure 3 (left).
    EXPECT_NE(view.find("12 runs each with ~15 samples, for a total of 180 experiments"),
              std::string::npos);
    EXPECT_NE(view.find("#12"), std::string::npos);
    EXPECT_NE(view.find("rgb(120,120,120)"), std::string::npos);
}

TEST(Portal, DetailViewListsSamples) {
    DataPortal portal;
    portal.ingest(make_run("exp_a", 12, 15).to_json());
    const std::string view = portal.render_run_detail("exp_a", 12);
    EXPECT_NE(view.find("Detailed data from run #12"), std::string::npos);
    EXPECT_NE(view.find("plate_frame_12.ppm"), std::string::npos);
    // All 15 samples listed.
    EXPECT_NE(view.find("15"), std::string::npos);
    EXPECT_EQ(portal.render_run_detail("exp_a", 99).find("not found") == std::string::npos,
              false);
}

TEST(Portal, WholePortalJsonRoundTrip) {
    DataPortal portal;
    portal.ingest(make_experiment("exp_a").to_json());
    portal.ingest(make_run("exp_a", 1, 3).to_json());
    const DataPortal back = DataPortal::from_json(portal.to_json());
    EXPECT_EQ(back.experiment_count(), 1u);
    EXPECT_EQ(back.run_count(), 1u);
    EXPECT_EQ(back.find_run("exp_a", 1)->samples.size(), 3u);
}

// ------------------------------------------------------------------- flow

TEST(Flow, PublishesAsynchronouslyThroughStages) {
    Simulation sim;
    DataPortal portal;
    GlobusFlowSim flow(sim, portal);

    flow.publish(make_run("exp_a", 1, 2).to_json());
    EXPECT_EQ(flow.in_flight(), 1u);
    EXPECT_EQ(portal.run_count(), 0u);  // not yet indexed

    sim.run_all();
    EXPECT_EQ(flow.in_flight(), 0u);
    EXPECT_EQ(flow.completed(), 1u);
    EXPECT_EQ(portal.run_count(), 1u);
    ASSERT_EQ(flow.completion_times().size(), 1u);
    // Three stages: at least the sum of minimum jittered latencies.
    EXPECT_GT(flow.completion_times()[0].to_seconds(), 4.0);
}

TEST(Flow, ManyPublicationsTrackUploadInterval) {
    Simulation sim;
    DataPortal portal;
    GlobusFlowSim flow(sim, portal);

    // Publish every 230 s of simulated time, as the B=1 loop does.
    for (int i = 0; i < 10; ++i) {
        flow.publish(make_run("exp_a", i + 1, 1).to_json());
        sim.run_until_time(TimePoint::from_seconds((i + 1) * 230.0));
    }
    sim.run_all();
    EXPECT_EQ(flow.completed(), 10u);
    EXPECT_NEAR(flow.mean_upload_interval().to_seconds(), 230.0, 5.0);
    EXPECT_EQ(portal.run_count(), 10u);
}

TEST(Flow, DeterministicForEqualSeeds) {
    auto run_once = [] {
        Simulation sim;
        DataPortal portal;
        GlobusFlowSim flow(sim, portal);
        flow.publish(make_run("exp_a", 1, 1).to_json());
        sim.run_all();
        return flow.completion_times()[0].to_seconds();
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}

// -------------------------------------------------------------- artifacts

TEST(Artifacts, WritesOneFilePerWorkflowRun) {
    sdl::wei::EventLog log;
    sdl::wei::StepRecord step;
    step.workflow = "cp_wf_mixcolor";
    step.step = "mix";
    step.module = "ot2";
    step.action = "run_protocol";
    step.start = TimePoint::from_seconds(0);
    step.end = TimePoint::from_seconds(145);
    log.record_step(step);
    log.record_workflow({"cp_wf_mixcolor", TimePoint::from_seconds(0),
                         TimePoint::from_seconds(200), true});
    log.record_workflow({"cp_wf_trashplate", TimePoint::from_seconds(200),
                         TimePoint::from_seconds(280), true});

    const std::string dir = ::testing::TempDir() + "/sdl_artifacts";
    std::filesystem::remove_all(dir);
    const std::size_t written = write_run_artifacts(log, dir);
    EXPECT_EQ(written, 2u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/0_cp_wf_mixcolor.json"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/1_cp_wf_trashplate.json"));
}
