// Tests for the discrete-event simulation kernel and simulated resources.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "support/common.hpp"

using namespace sdl::des;
using sdl::support::Duration;
using sdl::support::TimePoint;
using sdl::support::Volume;

TEST(Simulation, EventsRunInTimeOrder) {
    Simulation sim;
    std::vector<int> order;
    sim.schedule_in(Duration::seconds(30), [&] { order.push_back(3); });
    sim.schedule_in(Duration::seconds(10), [&] { order.push_back(1); });
    sim.schedule_in(Duration::seconds(20), [&] { order.push_back(2); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 30.0);
    EXPECT_EQ(sim.processed(), 3u);
}

TEST(Simulation, SameTimeEventsRunInSchedulingOrder) {
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_in(Duration::seconds(5), [&order, i] { order.push_back(i); });
    }
    sim.run_all();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, NestedSchedulingAdvancesClock) {
    Simulation sim;
    double completion_time = -1.0;
    sim.schedule_in(Duration::seconds(10), [&] {
        sim.schedule_in(Duration::seconds(5), [&] {
            completion_time = sim.now().to_seconds();
        });
    });
    sim.run_all();
    EXPECT_DOUBLE_EQ(completion_time, 15.0);
}

TEST(Simulation, SchedulingInThePastThrows) {
    Simulation sim;
    sim.schedule_in(Duration::seconds(10), [] {});
    sim.run_all();
    EXPECT_THROW(sim.schedule_at(TimePoint::from_seconds(5), [] {}),
                 sdl::support::LogicError);
    EXPECT_THROW(sim.schedule_in(Duration::seconds(-1), [] {}), sdl::support::LogicError);
}

TEST(Simulation, RunUntilTimeLeavesLaterEventsPending) {
    Simulation sim;
    int fired = 0;
    sim.schedule_in(Duration::seconds(10), [&] { ++fired; });
    sim.schedule_in(Duration::seconds(30), [&] { ++fired; });
    sim.run_until_time(TimePoint::from_seconds(20));
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 20.0);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run_all();
    EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunUntilPredicate) {
    Simulation sim;
    bool done = false;
    sim.schedule_in(Duration::seconds(100), [&] { done = true; });
    sim.schedule_in(Duration::seconds(200), [] {});
    EXPECT_TRUE(sim.run_until([&] { return done; }));
    EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 100.0);
    EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulation, RunUntilReportsFailureWhenQueueDrains) {
    Simulation sim;
    sim.schedule_in(Duration::seconds(1), [] {});
    EXPECT_FALSE(sim.run_until([] { return false; }));
}

TEST(Simulation, RunUntilRespectsDeadline) {
    Simulation sim;
    bool done = false;
    sim.schedule_in(Duration::seconds(100), [&] { done = true; });
    EXPECT_FALSE(sim.run_until([&] { return done; }, TimePoint::from_seconds(50)));
    EXPECT_FALSE(done);
}

TEST(Simulation, DeterministicReplay) {
    auto run = [] {
        Simulation sim;
        std::string trace;
        // A little self-rescheduling process network.
        std::function<void(int)> proc = [&](int depth) {
            trace += std::to_string(depth) + ";";
            if (depth < 5) {
                sim.schedule_in(Duration::seconds(1.5), [&proc, depth] { proc(depth + 1); });
                sim.schedule_in(Duration::seconds(1.5), [&trace] { trace += "x;"; });
            }
        };
        sim.schedule_in(Duration::zero(), [&proc] { proc(0); });
        sim.run_all();
        return trace;
    };
    EXPECT_EQ(run(), run());
}

// --------------------------------------------------------------- resource

TEST(Resource, GrantsImmediatelyWhenFree) {
    Simulation sim;
    Resource arm(sim, 1, "pf400");
    bool granted = false;
    arm.acquire([&] { granted = true; });
    EXPECT_FALSE(granted);  // grant is deferred through the event queue
    sim.run_all();
    EXPECT_TRUE(granted);
    EXPECT_EQ(arm.in_use(), 1u);
}

TEST(Resource, QueuesWaitersFifo) {
    Simulation sim;
    Resource deck(sim, 1, "ot2");
    std::vector<int> grant_order;
    deck.acquire([&] { grant_order.push_back(1); });
    deck.acquire([&] { grant_order.push_back(2); });
    deck.acquire([&] { grant_order.push_back(3); });
    sim.run_all();
    EXPECT_EQ(grant_order, (std::vector<int>{1}));
    EXPECT_EQ(deck.waiting(), 2u);

    deck.release();
    sim.run_all();
    deck.release();
    sim.run_all();
    EXPECT_EQ(grant_order, (std::vector<int>{1, 2, 3}));
}

TEST(Resource, CapacityTwoAllowsTwoConcurrent) {
    Simulation sim;
    Resource decks(sim, 2, "ot2_pair");
    int active = 0;
    decks.acquire([&] { ++active; });
    decks.acquire([&] { ++active; });
    decks.acquire([&] { ++active; });
    sim.run_all();
    EXPECT_EQ(active, 2);
    EXPECT_EQ(decks.waiting(), 1u);
}

TEST(Resource, ReleaseWithoutAcquireThrows) {
    Simulation sim;
    Resource r(sim, 1);
    EXPECT_THROW(r.release(), sdl::support::LogicError);
}

// ------------------------------------------------------------------ store

TEST(Store, WithdrawDepositCycle) {
    Store reservoir(Volume::milliliters(20), Volume::milliliters(20), "cyan");
    EXPECT_TRUE(reservoir.try_withdraw(Volume::milliliters(5)));
    EXPECT_DOUBLE_EQ(reservoir.level().to_milliliters(), 15.0);
    EXPECT_FALSE(reservoir.try_withdraw(Volume::milliliters(16)));
    EXPECT_DOUBLE_EQ(reservoir.level().to_milliliters(), 15.0);  // unchanged
    const Volume accepted = reservoir.deposit(Volume::milliliters(10));
    EXPECT_DOUBLE_EQ(accepted.to_milliliters(), 5.0);  // clamped at capacity
    EXPECT_DOUBLE_EQ(reservoir.fill_fraction(), 1.0);
}

TEST(Store, DrainEmpties) {
    Store s(Volume::milliliters(10), Volume::milliliters(7));
    s.drain();
    EXPECT_DOUBLE_EQ(s.level().to_microliters(), 0.0);
    EXPECT_FALSE(s.try_withdraw(Volume::microliters(1)));
}

TEST(Store, InvalidConstructionThrows) {
    EXPECT_THROW(Store(Volume::milliliters(1), Volume::milliliters(2)),
                 sdl::support::LogicError);
}

// Property: interleavings of acquire/release maintain in_use <= capacity.
class ResourceCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResourceCapacity, NeverExceedsCapacity) {
    const std::size_t cap = GetParam();
    Simulation sim;
    Resource r(sim, cap);
    int concurrent = 0;
    int peak = 0;
    for (int i = 0; i < 20; ++i) {
        r.acquire([&] {
            ++concurrent;
            peak = std::max(peak, concurrent);
            sim.schedule_in(Duration::seconds(3), [&] {
                --concurrent;
                r.release();
            });
        });
    }
    sim.run_all();
    EXPECT_LE(static_cast<std::size_t>(peak), cap);
    EXPECT_EQ(concurrent, 0);
    EXPECT_EQ(r.waiting(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, ResourceCapacity, ::testing::Values(1u, 2u, 3u, 8u));
