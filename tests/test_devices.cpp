// Tests for the simulated instruments and their integration: the paper's
// workflows executed end-to-end against the DES and threaded transports.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "color/rgb.hpp"
#include "des/simulation.hpp"
#include "devices/barty.hpp"
#include "devices/camera.hpp"
#include "devices/manual.hpp"
#include "devices/ot2.hpp"
#include "devices/pf400.hpp"
#include "devices/sciclops.hpp"
#include "imaging/well_reader.hpp"
#include "support/common.hpp"
#include "wei/engine.hpp"
#include "wei/sim_transport.hpp"
#include "wei/thread_transport.hpp"

using namespace sdl;
using namespace sdl::wei;
using namespace sdl::devices;
using sdl::support::Duration;
using sdl::support::Volume;
namespace json = sdl::support::json;

namespace {

/// A complete color-picker workcell in a box, wired like Figure 1.
struct TestWorkcell {
    des::Simulation sim;
    PlateRegistry plates;
    LocationMap locations;
    ModuleRegistry registry;
    std::shared_ptr<SciclopsSim> sciclops;
    std::shared_ptr<Pf400Sim> pf400;
    std::shared_ptr<Ot2Sim> ot2;
    std::shared_ptr<BartySim> barty;
    std::shared_ptr<CameraSim> camera;

    TestWorkcell() {
        locations.add_location(locations::kExchange);
        locations.add_location(locations::kCamera);
        locations.add_location(locations::kOt2Deck);
        locations.add_location(locations::kTrash);

        sciclops = std::make_shared<SciclopsSim>(SciclopsConfig{}, plates, locations);
        pf400 = std::make_shared<Pf400Sim>(Pf400Config{}, locations);
        ot2 = std::make_shared<Ot2Sim>(Ot2Config{}, plates, locations);
        barty = std::make_shared<BartySim>(BartyConfig{}, ot2->reservoirs());
        camera = std::make_shared<CameraSim>(CameraConfig{}, plates, locations);

        registry.add(sciclops);
        registry.add(pf400);
        registry.add(ot2);
        registry.add(barty);
        registry.add(camera);
    }
};

ActionRequest request_of(const std::string& module, const std::string& action,
                         json::Value args = json::Value::object()) {
    return ActionRequest{module, action, std::move(args), 0};
}

}  // namespace

// --------------------------------------------------------------- sciclops

TEST(Sciclops, DispensesPlatesUntilEmpty) {
    TestWorkcell cell;
    SciclopsConfig small;
    small.towers = 1;
    small.plates_per_tower = 2;
    SciclopsSim sciclops(small, cell.plates, cell.locations);

    auto result = sciclops.execute(request_of("sciclops", "get_plate"));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.data.at("plates_remaining").as_int(), 1);
    const PlateId first = result.data.at("plate_id").as_int();
    EXPECT_EQ(cell.locations.peek(locations::kExchange), first);

    // Exchange occupied -> failure.
    result = sciclops.execute(request_of("sciclops", "get_plate"));
    EXPECT_FALSE(result.ok());

    (void)cell.locations.take(locations::kExchange);
    result = sciclops.execute(request_of("sciclops", "get_plate"));
    ASSERT_TRUE(result.ok());
    (void)cell.locations.take(locations::kExchange);

    // Towers empty -> failure.
    result = sciclops.execute(request_of("sciclops", "get_plate"));
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("empty"), std::string::npos);
}

TEST(Sciclops, StatusReportsInventory) {
    TestWorkcell cell;
    const auto result = cell.sciclops->execute(request_of("sciclops", "status"));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.data.at("plates_remaining").as_int(), 80);
}

// ------------------------------------------------------------------ pf400

TEST(Pf400, TransfersPlateBetweenNests) {
    TestWorkcell cell;
    const PlateId id = cell.plates.create(8, 12);
    cell.locations.place(locations::kExchange, id);

    json::Value args = json::Value::object();
    args.set("source", locations::kExchange);
    args.set("target", locations::kCamera);
    const auto result = cell.pf400->execute(request_of("pf400", "transfer", args));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(cell.locations.peek(locations::kCamera), id);
    EXPECT_EQ(cell.locations.peek(locations::kExchange), std::nullopt);
    EXPECT_EQ(cell.pf400->transfers_completed(), 1u);
}

TEST(Pf400, FailureModes) {
    TestWorkcell cell;
    json::Value args = json::Value::object();
    args.set("source", locations::kExchange);
    args.set("target", locations::kCamera);
    // Empty source.
    EXPECT_FALSE(cell.pf400->execute(request_of("pf400", "transfer", args)).ok());
    // Occupied target.
    cell.locations.place(locations::kExchange, cell.plates.create(8, 12));
    cell.locations.place(locations::kCamera, cell.plates.create(8, 12));
    EXPECT_FALSE(cell.pf400->execute(request_of("pf400", "transfer", args)).ok());
    // Missing args.
    EXPECT_FALSE(cell.pf400->execute(request_of("pf400", "transfer")).ok());
    // Unknown action.
    EXPECT_FALSE(cell.pf400->execute(request_of("pf400", "dance")).ok());
}

TEST(Pf400, TransferToTrashDisposesPlate) {
    TestWorkcell cell;
    cell.locations.place(locations::kCamera, cell.plates.create(8, 12));
    json::Value args = json::Value::object();
    args.set("source", locations::kCamera);
    args.set("target", locations::kTrash);
    ASSERT_TRUE(cell.pf400->execute(request_of("pf400", "transfer", args)).ok());
    EXPECT_EQ(cell.locations.peek(locations::kTrash), std::nullopt);
    EXPECT_EQ(cell.locations.peek(locations::kCamera), std::nullopt);
}

// -------------------------------------------------------------------- ot2

namespace {
json::Value mix_args(std::initializer_list<std::pair<int, std::array<double, 4>>> wells) {
    std::vector<DispenseOrder> orders;
    for (const auto& [well, vols] : wells) {
        DispenseOrder order;
        order.well = well;
        for (std::size_t dye = 0; dye < 4; ++dye) {
            order.volumes[dye] = Volume::microliters(vols[dye]);
        }
        orders.push_back(order);
    }
    return Ot2Sim::make_protocol_args(orders);
}
}  // namespace

TEST(Ot2, MixesWellsAndDepletesReservoirs) {
    TestWorkcell cell;
    for (auto& reservoir : cell.ot2->reservoirs()) {
        reservoir.deposit(Volume::milliliters(25));
    }
    const PlateId id = cell.plates.create(8, 12);
    cell.locations.place(locations::kOt2Deck, id);

    const auto result = cell.ot2->execute(
        request_of("ot2", "run_protocol", mix_args({{0, {20, 20, 20, 20}},
                                                    {1, {40, 10, 10, 0}}})));
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.data.at("wells_mixed").as_int(), 2);

    const Plate& plate = cell.plates.get(id);
    EXPECT_TRUE(plate.is_filled(0));
    EXPECT_TRUE(plate.is_filled(1));
    EXPECT_FALSE(plate.is_filled(2));
    // Dispensed volumes are noisy but near the request.
    EXPECT_NEAR(plate.content(0).volumes[0].to_microliters(), 20.0, 5.0);
    // Reservoir levels dropped by roughly the requested totals.
    EXPECT_NEAR(cell.ot2->reservoirs()[0].level().to_milliliters(), 25.0 - 0.060, 0.01);
    EXPECT_EQ(cell.ot2->wells_mixed(), 2u);
}

TEST(Ot2, EqualVolumesOfGrayRecipeGiveGrayishColor) {
    TestWorkcell cell;
    for (auto& reservoir : cell.ot2->reservoirs()) {
        reservoir.deposit(Volume::milliliters(25));
    }
    const PlateId id = cell.plates.create(8, 12);
    cell.locations.place(locations::kOt2Deck, id);

    // The analytically exact recipe for RGB(120,120,120).
    const auto ratios = cell.ot2->mixer().invert_target({120, 120, 120});
    ASSERT_TRUE(ratios.has_value());
    std::array<double, 4> vols{};
    for (std::size_t dye = 0; dye < 4; ++dye) vols[dye] = 100.0 * (*ratios)[dye];
    ASSERT_TRUE(cell.ot2->execute(request_of("ot2", "run_protocol", mix_args({{0, vols}})))
                    .ok());
    const color::Rgb8 mixed = cell.plates.get(id).content(0).true_color;
    // Pipetting noise shifts the color slightly off perfect gray.
    EXPECT_LT(color::rgb_distance(mixed, {120, 120, 120}), 12.0);
}

TEST(Ot2, FailsWithoutPlate) {
    TestWorkcell cell;
    for (auto& reservoir : cell.ot2->reservoirs()) {
        reservoir.deposit(Volume::milliliters(25));
    }
    const auto result =
        cell.ot2->execute(request_of("ot2", "run_protocol", mix_args({{0, {10, 10, 10, 10}}})));
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("no plate"), std::string::npos);
}

TEST(Ot2, FailsOnEmptyReservoirsAndLeavesStateUntouched) {
    TestWorkcell cell;  // reservoirs start empty
    const PlateId id = cell.plates.create(8, 12);
    cell.locations.place(locations::kOt2Deck, id);
    const auto result =
        cell.ot2->execute(request_of("ot2", "run_protocol", mix_args({{0, {10, 10, 10, 10}}})));
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("refill"), std::string::npos);
    EXPECT_FALSE(cell.plates.get(id).is_filled(0));
}

TEST(Ot2, RejectsDoubleFillAndBadWells) {
    TestWorkcell cell;
    for (auto& reservoir : cell.ot2->reservoirs()) {
        reservoir.deposit(Volume::milliliters(25));
    }
    const PlateId id = cell.plates.create(8, 12);
    cell.locations.place(locations::kOt2Deck, id);
    ASSERT_TRUE(
        cell.ot2->execute(request_of("ot2", "run_protocol", mix_args({{0, {10, 10, 10, 10}}})))
            .ok());
    EXPECT_FALSE(
        cell.ot2->execute(request_of("ot2", "run_protocol", mix_args({{0, {10, 10, 10, 10}}})))
            .ok());
    EXPECT_FALSE(
        cell.ot2->execute(request_of("ot2", "run_protocol", mix_args({{96, {10, 10, 10, 10}}})))
            .ok());
    EXPECT_FALSE(cell.ot2->execute(request_of("ot2", "run_protocol")).ok());
}

TEST(Ot2, EstimateScalesWithBatchSize) {
    TestWorkcell cell;
    const Ot2Timing timing;  // defaults
    const auto args1 = mix_args({{0, {10, 10, 10, 10}}});
    json::Value args8 = json::Value::object();
    {
        std::vector<DispenseOrder> orders;
        for (int i = 0; i < 8; ++i) {
            DispenseOrder order;
            order.well = i;
            order.volumes.fill(Volume::microliters(10));
            orders.push_back(order);
        }
        args8 = Ot2Sim::make_protocol_args(orders);
    }
    const Duration d1 = cell.ot2->estimate(request_of("ot2", "run_protocol", args1));
    const Duration d8 = cell.ot2->estimate(request_of("ot2", "run_protocol", args8));
    EXPECT_DOUBLE_EQ(d1.to_seconds(),
                     timing.protocol_overhead.to_seconds() + timing.per_well.to_seconds());
    EXPECT_DOUBLE_EQ(d8.to_seconds(), timing.protocol_overhead.to_seconds() +
                                          8 * timing.per_well.to_seconds());
}

TEST(Ot2, ProtocolArgsRoundTrip) {
    std::vector<DispenseOrder> orders(3);
    for (int i = 0; i < 3; ++i) {
        orders[static_cast<std::size_t>(i)].well = i * 7;
        for (std::size_t dye = 0; dye < 4; ++dye) {
            orders[static_cast<std::size_t>(i)].volumes[dye] =
                Volume::microliters(10.0 * static_cast<double>(i + 1) + static_cast<double>(dye));
        }
    }
    const json::Value args = Ot2Sim::make_protocol_args(orders);
    const auto back = Ot2Sim::parse_protocol_args(args);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[2].well, 14);
    EXPECT_DOUBLE_EQ(back[1].volumes[3].to_microliters(), 23.0);
}

// ------------------------------------------------------------------ barty

TEST(Barty, FillDrainRefillCycle) {
    TestWorkcell cell;
    ASSERT_TRUE(cell.barty->execute(request_of("barty", "fill_colors")).ok());
    for (const auto& reservoir : cell.ot2->reservoirs()) {
        EXPECT_DOUBLE_EQ(reservoir.fill_fraction(), 1.0);
    }
    ASSERT_TRUE(cell.barty->execute(request_of("barty", "drain_colors")).ok());
    for (const auto& reservoir : cell.ot2->reservoirs()) {
        EXPECT_DOUBLE_EQ(reservoir.level().to_microliters(), 0.0);
    }
    ASSERT_TRUE(cell.barty->execute(request_of("barty", "refill_colors")).ok());
    for (const auto& reservoir : cell.ot2->reservoirs()) {
        EXPECT_DOUBLE_EQ(reservoir.fill_fraction(), 1.0);
    }
    // Bulk decreased by two full fills.
    EXPECT_NEAR(cell.barty->bulk_remaining(0).to_milliliters(), 500.0 - 50.0, 1e-9);
}

TEST(Barty, BulkExhaustionFails) {
    TestWorkcell cell;
    BartyConfig tiny;
    tiny.bulk_capacity = Volume::milliliters(30);  // one fill + a bit
    BartySim barty(tiny, cell.ot2->reservoirs());
    ASSERT_TRUE(barty.execute(request_of("barty", "fill_colors")).ok());
    ASSERT_TRUE(barty.execute(request_of("barty", "drain_colors")).ok());
    const auto result = barty.execute(request_of("barty", "fill_colors"));
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("exhausted"), std::string::npos);
}

// ----------------------------------------------- clogged-tip fault chain

namespace {

/// Fresh OT2 with a filled plate on its deck and full reservoirs, ready
/// to run protocols back to back (clog-chain tests re-run many).
struct ClogBench {
    TestWorkcell cell;
    std::shared_ptr<Ot2Sim> ot2;
    PlateId plate = 0;

    explicit ClogBench(double clog_prob, std::uint64_t noise_seed = 0x07B2) {
        Ot2Config config;
        config.clog_prob = clog_prob;
        config.noise_seed = noise_seed;
        ot2 = std::make_shared<Ot2Sim>(config, cell.plates, cell.locations);
        for (auto& reservoir : ot2->reservoirs()) {
            reservoir.deposit(Volume::milliliters(200));
        }
        plate = cell.plates.create(8, 12);
        cell.locations.place(locations::kOt2Deck, plate);
    }

    wei::ActionResult mix(int well) {
        return ot2->execute(request_of("ot2", "run_protocol",
                                       mix_args({{well, {20, 20, 20, 20}}})));
    }
};

}  // namespace

TEST(Ot2, CloggedTipBlocksProtocolsUntilPrimed) {
    ClogBench bench(1.0);  // every protocol leaves a clog
    ASSERT_TRUE(bench.mix(0).ok());
    EXPECT_TRUE(bench.ot2->needs_prime());

    // The chain: the *next* protocol is rejected until prime_tips runs.
    const auto blocked = bench.mix(1);
    EXPECT_FALSE(blocked.ok());
    EXPECT_NE(blocked.error.find("clogged"), std::string::npos);
    EXPECT_NE(blocked.error.find("prime_tips"), std::string::npos);
    EXPECT_FALSE(bench.cell.plates.get(bench.plate).is_filled(1));

    bench.ot2->prime_tips();
    EXPECT_FALSE(bench.ot2->needs_prime());
    ASSERT_TRUE(bench.mix(1).ok());
    // ...and pipetting again re-latches it at clog_prob = 1.
    EXPECT_TRUE(bench.ot2->needs_prime());
}

TEST(Ot2, ClogChainIsSeedDeterministic) {
    // Same noise_seed => the same protocols clog, run for run.
    const auto chain_of = [](std::uint64_t seed) {
        ClogBench bench(0.35, seed);
        std::vector<bool> clogged;
        for (int well = 0; well < 24; ++well) {
            if (bench.ot2->needs_prime()) bench.ot2->prime_tips();
            EXPECT_TRUE(bench.mix(well).ok());
            clogged.push_back(bench.ot2->needs_prime());
        }
        return clogged;
    };
    const std::vector<bool> first = chain_of(0xC10C);
    EXPECT_EQ(first, chain_of(0xC10C));
    // The chain actually fires and actually spares at this rate.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
    // A different seed draws a different chain.
    EXPECT_NE(first, chain_of(0xFACE));
}

TEST(Ot2, ClogChainLeavesDispenseNoiseUntouched) {
    // The chain rolls on a dedicated rng stream: enabling it must not
    // shift the dispense-noise draws, or clog_prob would change every
    // measured color in a generated scenario.
    ClogBench with(1.0);
    ClogBench without(0.0);
    ASSERT_TRUE(with.mix(0).ok());
    ASSERT_TRUE(without.mix(0).ok());
    const auto& with_content = with.cell.plates.get(with.plate).content(0);
    const auto& without_content = without.cell.plates.get(without.plate).content(0);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(with_content.volumes[i].to_microliters(),
                         without_content.volumes[i].to_microliters());
    }
}

TEST(Barty, PrimeTipsClearsClogThroughTheHook) {
    ClogBench bench(1.0);
    BartySim barty(BartyConfig{}, bench.ot2->reservoirs());
    barty.set_prime_hook([&] { bench.ot2->prime_tips(); });

    ASSERT_TRUE(bench.mix(0).ok());
    ASSERT_TRUE(bench.ot2->needs_prime());
    ASSERT_TRUE(barty.execute(request_of("barty", "prime_tips")).ok());
    EXPECT_FALSE(bench.ot2->needs_prime());

    // Priming is real robotic work: it takes barty's prime time and,
    // being robotic, counts toward commands-completed-without-humans.
    EXPECT_GT(barty.estimate(request_of("barty", "prime_tips")).to_seconds(), 0.0);
    EXPECT_TRUE(barty.info().robotic);
}

TEST(Manual, BartyStandInPrimesButIsExcludedFromCcwh) {
    ClogBench bench(1.0);
    ManualConfig config;
    config.stand_in_for = "barty";
    ManualOperatorSim manual(config, bench.cell.plates, bench.cell.locations,
                             &bench.ot2->reservoirs());
    manual.set_prime_hook([&] { bench.ot2->prime_tips(); });

    ASSERT_TRUE(bench.mix(0).ok());
    ASSERT_TRUE(bench.ot2->needs_prime());
    ASSERT_TRUE(manual.execute(request_of("barty", "prime_tips")).ok());
    EXPECT_FALSE(bench.ot2->needs_prime());
    // A human back-flushing tips is an intervention, not autonomous
    // throughput: the stand-in is non-robotic, so CCWH excludes it.
    EXPECT_FALSE(manual.info().robotic);
}

// ----------------------------------------------------------------- camera

TEST(Camera, CapturesFrameOfPlateOnNest) {
    TestWorkcell cell;
    for (auto& reservoir : cell.ot2->reservoirs()) {
        reservoir.deposit(Volume::milliliters(25));
    }
    const PlateId id = cell.plates.create(8, 12);
    cell.locations.place(locations::kOt2Deck, id);
    ASSERT_TRUE(
        cell.ot2->execute(request_of("ot2", "run_protocol", mix_args({{0, {30, 20, 10, 5}}})))
            .ok());
    (void)cell.locations.take(locations::kOt2Deck);
    cell.locations.place(locations::kCamera, id);

    const auto result = cell.camera->execute(request_of("camera", "take_picture"));
    ASSERT_TRUE(result.ok());
    const std::int64_t frame_id = result.data.at("frame_id").as_int();
    EXPECT_EQ(result.data.at("wells_filled").as_int(), 1);

    const imaging::Image& frame = cell.camera->frame(frame_id);
    EXPECT_EQ(frame.width(), cell.camera->scene().width);

    // The frame must be readable by the vision pipeline.
    imaging::WellReadParams params;
    params.geometry = cell.camera->scene().geometry;
    const imaging::WellReadout readout = imaging::read_plate(frame, params);
    ASSERT_TRUE(readout.ok) << readout.error;
    const color::Rgb8 truth = cell.plates.get(id).content(0).true_color;
    EXPECT_LT(color::rgb_distance(readout.colors[0], truth), 25.0);
}

TEST(Camera, FailsWithEmptyNest) {
    TestWorkcell cell;
    EXPECT_FALSE(cell.camera->execute(request_of("camera", "take_picture")).ok());
}

TEST(Camera, EvictsOldFrames) {
    TestWorkcell cell;
    CameraConfig config;
    config.max_frames = 2;
    CameraSim camera(config, cell.plates, cell.locations);
    cell.locations.place(locations::kCamera, cell.plates.create(8, 12));
    std::int64_t first_id = 0;
    for (int i = 0; i < 3; ++i) {
        const auto result = camera.execute(request_of("camera", "take_picture"));
        ASSERT_TRUE(result.ok());
        if (i == 0) first_id = result.data.at("frame_id").as_int();
    }
    EXPECT_THROW((void)camera.frame(first_id), sdl::support::Error);
    EXPECT_EQ(camera.frames_captured(), 3);
}

TEST(Camera, GlitchedFrameHasNoDetectableMarker) {
    TestWorkcell cell;
    CameraConfig config;
    config.glitch_prob = 1.0;  // always glitched
    CameraSim camera(config, cell.plates, cell.locations);
    cell.locations.place(locations::kCamera, cell.plates.create(8, 12));
    const auto result = camera.execute(request_of("camera", "take_picture"));
    ASSERT_TRUE(result.ok());  // the capture itself succeeds
    EXPECT_TRUE(result.data.at("glitched").as_bool());
    const auto& frame = camera.frame(result.data.at("frame_id").as_int());
    EXPECT_TRUE(imaging::detect_markers(frame, imaging::MarkerDictionary::standard())
                    .empty());
}

TEST(Camera, BaseRasterCacheFramesByteIdentical) {
    // The PlateRenderer base cache is a pure perf optimization: with the
    // same noise seed, a caching camera and a non-caching camera must
    // archive byte-identical frames across a sequence of captures with
    // changing well contents and interleaved glitches.
    TestWorkcell cell;
    CameraConfig cached_config;
    cached_config.glitch_prob = 0.25;
    cached_config.max_frames = 64;
    CameraConfig plain_config = cached_config;
    plain_config.cache_base_raster = false;
    CameraSim cached(cached_config, cell.plates, cell.locations);
    CameraSim plain(plain_config, cell.plates, cell.locations);

    const PlateId id = cell.plates.create(8, 12);
    cell.locations.place(locations::kCamera, id);
    Plate& plate = cell.plates.get(id);
    for (int i = 0; i < 12; ++i) {
        WellContent content;
        content.true_color = {static_cast<std::uint8_t>(20 * i), 120, 90};
        plate.fill(i * 7, content);
        const auto a = cached.execute(request_of("camera", "take_picture"));
        const auto b = plain.execute(request_of("camera", "take_picture"));
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(a.data.at("glitched").as_bool(), b.data.at("glitched").as_bool());
        const imaging::Image& fa = cached.frame(a.data.at("frame_id").as_int());
        const imaging::Image& fb = plain.frame(b.data.at("frame_id").as_int());
        const auto ba = fa.bytes();
        const auto bb = fb.bytes();
        ASSERT_EQ(ba.size(), bb.size());
        EXPECT_TRUE(std::equal(ba.begin(), ba.end(), bb.begin())) << "capture " << i;
    }
}

TEST(Camera, IsNotARoboticModule) {
    TestWorkcell cell;
    EXPECT_FALSE(cell.camera->info().robotic);
    EXPECT_TRUE(cell.pf400->info().robotic);
}

// ------------------------------------------------- workflow integration

namespace {

Workflow wf_newplate() {
    return Workflow::from_yaml(R"(name: cp_wf_newplate
steps:
  - name: get plate
    module: sciclops
    action: get_plate
  - name: stage plate
    module: pf400
    action: transfer
    args: {source: sciclops.exchange, target: camera.nest}
  - name: fill reservoirs
    module: barty
    action: fill_colors
)");
}

Workflow wf_mixcolor() {
    return Workflow::from_yaml(R"(name: cp_wf_mixcolor
steps:
  - name: plate to ot2
    module: pf400
    action: transfer
    args: {source: camera.nest, target: ot2.deck}
  - name: mix colors
    module: ot2
    action: run_protocol
    args: {protocol: mix_colors}
  - name: plate to camera
    module: pf400
    action: transfer
    args: {source: ot2.deck, target: camera.nest}
  - name: photograph
    module: camera
    action: take_picture
)");
}

}  // namespace

TEST(Integration, PaperWorkflowsRunOnSimTransport) {
    TestWorkcell cell;
    SimTransport transport(cell.sim, cell.registry);
    EventLog log;
    WorkflowEngine engine(transport, cell.registry, log);

    (void)engine.run(wf_newplate());

    std::vector<DispenseOrder> orders(1);
    orders[0].well = 0;
    orders[0].volumes.fill(Volume::microliters(25));
    const Workflow mix =
        wf_mixcolor().with_step_args("mix colors", Ot2Sim::make_protocol_args(orders));
    (void)engine.run(mix);

    // Timing: newplate = 20 + 42.65 + 45 = 107.65 s;
    // mixcolor = 42.65 + (110.3 + 35) + 42.65 + 1.5 = 232.1 s.
    EXPECT_NEAR(transport.now().to_seconds(), 107.65 + 232.1, 1e-9);
    // CCWH so far: 3 (newplate) + 3 (mixcolor, camera not robotic).
    EXPECT_EQ(log.successful_commands(), 6u);
    // Synthesis vs transfer attribution.
    EXPECT_NEAR(log.module_busy_time("ot2").to_seconds(), 145.3, 1e-9);
    EXPECT_NEAR(log.module_busy_time("pf400").to_seconds(), 3 * 42.65, 1e-9);

    // The plate is back at the camera with one mixed well.
    const auto plate_id = cell.locations.peek(locations::kCamera);
    ASSERT_TRUE(plate_id.has_value());
    EXPECT_EQ(cell.plates.get(*plate_id).filled_count(), 1);
}

TEST(Integration, PaperWorkflowsRunOnThreadTransport) {
    TestWorkcell cell;
    ThreadTransport transport(cell.registry, 1e-6);
    EventLog log;
    WorkflowEngine engine(transport, cell.registry, log);

    (void)engine.run(wf_newplate());
    std::vector<DispenseOrder> orders(1);
    orders[0].well = 0;
    orders[0].volumes.fill(Volume::microliters(25));
    (void)engine.run(
        wf_mixcolor().with_step_args("mix colors", Ot2Sim::make_protocol_args(orders)));

    EXPECT_EQ(log.successful_commands(), 6u);
    EXPECT_NEAR(transport.now().to_seconds(), 107.65 + 232.1, 1e-6);
}
