// Tests for the fleet building blocks: the line protocol, the
// lease-table scheduler (grant/complete/revoke/adaptive sizing and the
// loud duplicate guard), cost-model cell ordering, the SDLBENCH_WORKERS
// parser, and the subprocess/pipe helpers (POSIX only).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <sys/wait.h>

#include <csignal>
#endif

#include "campaign/cost_model.hpp"
#include "campaign/fleet.hpp"
#include "campaign/lease.hpp"
#include "support/common.hpp"
#include "support/subprocess.hpp"
#include "support/thread_pool.hpp"

using namespace sdl;
using namespace sdl::campaign;

// ---------------------------------------------------------------- protocol

TEST(FleetProtocol, WorkerLinesRoundTrip) {
    const auto hello = parse_worker_line(format_hello(4321));
    ASSERT_TRUE(hello.has_value());
    EXPECT_EQ(hello->kind, WorkerMsgKind::Hello);
    EXPECT_EQ(hello->pid, 4321);

    const auto beat = parse_worker_line(format_beat());
    ASSERT_TRUE(beat.has_value());
    EXPECT_EQ(beat->kind, WorkerMsgKind::Beat);

    const auto ack = parse_worker_line(format_ack(17));
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->kind, WorkerMsgKind::Ack);
    EXPECT_EQ(ack->cell, 17u);
}

TEST(FleetProtocol, CoordinatorLinesRoundTrip) {
    const auto lease = parse_coordinator_line(format_lease({3, 0, 12}));
    ASSERT_TRUE(lease.has_value());
    EXPECT_EQ(lease->kind, CoordMsgKind::Lease);
    EXPECT_EQ(lease->cells, (std::vector<std::size_t>{3, 0, 12}));

    const auto stop = parse_coordinator_line(format_stop());
    ASSERT_TRUE(stop.has_value());
    EXPECT_EQ(stop->kind, CoordMsgKind::Stop);
}

TEST(FleetProtocol, MalformedLinesRejected) {
    // Garbage never half-parses: every frame is all-or-nothing.
    EXPECT_FALSE(parse_worker_line("").has_value());
    EXPECT_FALSE(parse_worker_line("ack").has_value());
    EXPECT_FALSE(parse_worker_line("ack x").has_value());
    EXPECT_FALSE(parse_worker_line("ack 1 2").has_value());
    EXPECT_FALSE(parse_worker_line("ack  1").has_value());  // double space
    EXPECT_FALSE(parse_worker_line("hello").has_value());
    EXPECT_FALSE(parse_worker_line("beat now").has_value());
    EXPECT_FALSE(parse_worker_line("lease 1").has_value());  // wrong direction
    EXPECT_FALSE(parse_coordinator_line("lease").has_value());
    EXPECT_FALSE(parse_coordinator_line("lease 1 x").has_value());
    EXPECT_FALSE(parse_coordinator_line("stop now").has_value());
    EXPECT_FALSE(parse_coordinator_line("ack 1").has_value());
}

TEST(FleetProtocol, EmptyLeaseThrows) {
    EXPECT_THROW((void)format_lease({}), support::LogicError);
}

// -------------------------------------------------------------- lease table

TEST(LeaseTableTest, GrantsFollowScheduleOrder) {
    LeaseTable table(4, {2, 0, 3, 1});
    EXPECT_EQ(table.grant(0, 2), (std::vector<std::size_t>{2, 0}));
    EXPECT_EQ(table.grant(1, 10), (std::vector<std::size_t>{3, 1}));
    EXPECT_TRUE(table.grant(2, 1).empty());  // everything leased
    EXPECT_EQ(table.outstanding(0), 2u);
    EXPECT_EQ(table.outstanding(1), 2u);
}

TEST(LeaseTableTest, CompleteTwiceThrows) {
    LeaseTable table(2, {0, 1});
    (void)table.grant(0, 2);
    table.complete(1);
    EXPECT_THROW(table.complete(1), support::LogicError);
    EXPECT_THROW(table.complete(99), support::LogicError);  // out of range
    table.complete(0);
    EXPECT_TRUE(table.all_done());
}

TEST(LeaseTableTest, RevokeReturnsIncompleteCellsToFront) {
    LeaseTable table(5, {4, 3, 2, 1, 0});
    (void)table.grant(7, 3);  // cells 4, 3, 2
    table.complete(3);        // journaled before death
    const std::vector<std::size_t> revoked = table.revoke(7);
    EXPECT_EQ(revoked, (std::vector<std::size_t>{4, 2}));  // schedule order
    EXPECT_EQ(table.outstanding(7), 0u);
    // Revoked cells are re-leased before the untouched tail (1, 0), in
    // their original schedule order (4 before 2).
    EXPECT_EQ(table.grant(8, 5), (std::vector<std::size_t>{4, 2, 1, 0}));
}

TEST(LeaseTableTest, CompletedPendingCellIsNeverReleased) {
    // A revoked cell's journal record can surface after the revoke; once
    // completed, grant() must skip its stale queue entry.
    LeaseTable table(2, {0, 1});
    (void)table.grant(0, 2);
    (void)table.revoke(0);
    table.complete(0);  // salvage drain after the revoke
    EXPECT_EQ(table.grant(1, 5), (std::vector<std::size_t>{1}));
    table.complete(1);
    EXPECT_TRUE(table.all_done());
}

TEST(LeaseTableTest, CrashCountsAreDedupedByIncarnation) {
    LeaseTable table(3, {0, 1, 2});
    (void)table.grant(0, 1);
    // The same incarnation crashing on a cell twice (kill, salvage,
    // re-lease, kill again before the respawn lands) is one conviction
    // vote, not two.
    EXPECT_EQ(table.record_crash(0, 7), 1u);
    EXPECT_EQ(table.record_crash(0, 7), 1u);
    EXPECT_EQ(table.record_crash(0, 8), 2u);
    EXPECT_EQ(table.crash_count(0), 2u);
    EXPECT_EQ(table.crash_count(1), 0u);
    // A crash attributed to an already-finished cell is ignored (the
    // blame heuristic guessed wrong; the result stands).
    table.complete(0);
    EXPECT_EQ(table.record_crash(0, 9), 0u);
    EXPECT_EQ(table.crash_count(0), 2u);
}

TEST(LeaseTableTest, QuarantineRemovesTheCellFromTheSchedule) {
    LeaseTable table(3, {2, 1, 0});
    (void)table.grant(0, 1);  // cell 2
    (void)table.revoke(0);
    EXPECT_EQ(table.record_crash(2, 0), 1u);
    table.quarantine(2);
    EXPECT_TRUE(table.is_quarantined(2));
    EXPECT_EQ(table.quarantined_count(), 1u);
    EXPECT_EQ(table.quarantined(), (std::vector<std::size_t>{2}));
    // The poisoned cell is never granted again.
    EXPECT_EQ(table.grant(1, 5), (std::vector<std::size_t>{1, 0}));
    // Crash votes against a quarantined cell no longer accumulate.
    EXPECT_EQ(table.record_crash(2, 1), 0u);
    // A quarantined cell still counts toward termination.
    table.complete(1);
    table.complete(0);
    EXPECT_TRUE(table.all_done());
    EXPECT_EQ(table.done_count(), 2u);
}

TEST(LeaseTableTest, QuarantineGuardsAgainstBookkeepingBugs) {
    LeaseTable table(2, {0, 1});
    (void)table.grant(0, 2);
    table.complete(0);
    // Quarantining a finished cell would discard a good result.
    EXPECT_THROW(table.quarantine(0), support::LogicError);
    table.quarantine(1);
    // Double conviction and completion-after-quarantine are coordinator
    // logic errors, not recoverable states.
    EXPECT_THROW(table.quarantine(1), support::LogicError);
    EXPECT_THROW(table.complete(1), support::LogicError);
}

TEST(LeaseTableTest, SuggestedLeaseShrinksAsQueueDrains) {
    LeaseTable table(12, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
    // ceil(12 / (2*3)) = 2 with a full queue...
    EXPECT_EQ(table.suggested_lease(3, 0), 2u);
    (void)table.grant(0, 9);
    // ...down to 1 near the end (this is the work-stealing)...
    EXPECT_EQ(table.suggested_lease(3, 0), 1u);
    (void)table.grant(1, 3);
    // ...and 0 when nothing is pending.
    EXPECT_EQ(table.suggested_lease(3, 0), 0u);
    // max_lease caps the full-queue suggestion.
    LeaseTable wide(100, [] {
        std::vector<std::size_t> order(100);
        for (std::size_t i = 0; i < 100; ++i) order[i] = i;
        return order;
    }());
    EXPECT_EQ(wide.suggested_lease(2, 0), 25u);
    EXPECT_EQ(wide.suggested_lease(2, 4), 4u);
}

TEST(LeaseTableTest, RejectsNonPermutationOrder) {
    EXPECT_THROW(LeaseTable(3, {0, 1}), support::LogicError);       // short
    EXPECT_THROW(LeaseTable(3, {0, 1, 1}), support::LogicError);    // dup
    EXPECT_THROW(LeaseTable(3, {0, 1, 3}), support::LogicError);    // range
}

// -------------------------------------------------------------- cost model

namespace {

CampaignCell make_cell(std::size_t index, const std::string& solver, int samples,
                       int batch) {
    CampaignCell cell;
    cell.index = index;
    cell.solver = solver;
    cell.batch_size = batch;
    cell.config.solver = solver;
    cell.config.total_samples = samples;
    cell.config.batch_size = batch;
    return cell;
}

}  // namespace

TEST(CostModelTest, OrdersLongestExpectedFirst) {
    const std::vector<CampaignCell> cells = {
        make_cell(0, "random", 16, 8),
        make_cell(1, "bayesian", 128, 8),  // GP at N=128: by far the longest
        make_cell(2, "genetic", 16, 8),
        make_cell(3, "random", 16, 1),  // 16 batches of overhead beats 2
    };
    const std::vector<std::size_t> order = schedule_order(cells);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 3u);
    // Same sample/batch shape: genetic outweighs random per proposal.
    EXPECT_GT(expected_cell_cost(cells[2]), expected_cell_cost(cells[0]));
    EXPECT_EQ(order[2], 2u);
    EXPECT_EQ(order[3], 0u);
}

TEST(CostModelTest, TiesKeepPositionOrderAndCostsArePositive) {
    const std::vector<CampaignCell> cells = {
        make_cell(0, "random", 16, 8),
        make_cell(1, "random", 16, 8),
        make_cell(2, "random", 16, 8),
    };
    EXPECT_EQ(schedule_order(cells), (std::vector<std::size_t>{0, 1, 2}));
    for (const CampaignCell& cell : cells) {
        EXPECT_GT(expected_cell_cost(cell), 0.0);
    }
    EXPECT_TRUE(schedule_order({}).empty());
}

// ------------------------------------------------------ SDLBENCH_WORKERS

TEST(PoolSizeFromEnvTest, ParsesPositiveIntegersOnly) {
    EXPECT_EQ(support::pool_size_from_env(nullptr), 0u);   // unset: default
    EXPECT_EQ(support::pool_size_from_env(""), 0u);
    EXPECT_EQ(support::pool_size_from_env("0"), 0u);       // 0 means default
    EXPECT_EQ(support::pool_size_from_env("1"), 1u);
    EXPECT_EQ(support::pool_size_from_env("16"), 16u);
    EXPECT_EQ(support::pool_size_from_env("two"), 0u);     // garbage: default
    EXPECT_EQ(support::pool_size_from_env("-3"), 0u);
    EXPECT_EQ(support::pool_size_from_env("4x"), 0u);
    EXPECT_EQ(support::pool_size_from_env("999999999999"), 0u);  // absurd
}

// ------------------------------------------------------------- line buffer

TEST(LineBufferTest, ReassemblesLinesAcrossChunks) {
    support::LineBuffer buffer;
    const std::string part1 = "ack 3\nbe";
    const std::string part2 = "at\nack ";
    buffer.feed(part1.data(), part1.size());
    EXPECT_EQ(buffer.next_line(), "ack 3");
    EXPECT_FALSE(buffer.next_line().has_value());  // "be" is a torn tail
    buffer.feed(part2.data(), part2.size());
    EXPECT_EQ(buffer.next_line(), "beat");
    EXPECT_FALSE(buffer.next_line().has_value());
    const std::string part3 = "7\n\n";
    buffer.feed(part3.data(), part3.size());
    EXPECT_EQ(buffer.next_line(), "ack 7");
    EXPECT_EQ(buffer.next_line(), "");  // empty line is a (malformed) line
    EXPECT_FALSE(buffer.next_line().has_value());
}

// -------------------------------------------------------------- subprocess

#if !defined(_WIN32)

TEST(SubprocessTest, SpawnEchoRoundTrip) {
    // cat echoes our lines back: exercises spawn, both pipes, EOF on
    // close_stdin, and clean reaping.
    support::ignore_sigpipe();
    support::ChildProcess child = support::spawn_child({"/bin/cat"});
    ASSERT_TRUE(child.valid());
    ASSERT_TRUE(support::write_line_fd(child.stdin_fd(), "hello fleet"));
    support::LineBuffer buffer;
    std::optional<std::string> line;
    for (int i = 0; i < 100 && !line; ++i) {
        const auto ready = support::poll_readable({child.stdout_fd()}, 100);
        if (ready[0]) (void)support::read_some(child.stdout_fd(), buffer);
        line = buffer.next_line();
    }
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, "hello fleet");
    child.close_stdin();  // cat exits on stdin EOF
    const int status = support::wait_exit(child);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(SubprocessTest, ExtraEnvOverridesInherited) {
    support::ChildProcess child = support::spawn_child(
        {"/bin/sh", "-c", "printf '%s\\n' \"$SDLBENCH_WORKERS\""},
        {"SDLBENCH_WORKERS=7"});
    ASSERT_TRUE(child.valid());
    support::LineBuffer buffer;
    std::optional<std::string> line;
    for (int i = 0; i < 100 && !line; ++i) {
        const auto ready = support::poll_readable({child.stdout_fd()}, 100);
        if (ready[0]) {
            if (support::read_some(child.stdout_fd(), buffer) == 0) break;
        }
        line = buffer.next_line();
    }
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, "7");
    (void)support::wait_exit(child);
}

TEST(SubprocessTest, KillHardReapsAndWriteToDeadChildFails) {
    support::ignore_sigpipe();
    support::ChildProcess child = support::spawn_child({"/bin/cat"});
    ASSERT_TRUE(child.valid());
    support::kill_hard(child);
    const int status = support::wait_exit(child);
    EXPECT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    // The pipe is now read-closed; the write surfaces as false, not a
    // SIGPIPE crash — the coordinator's worker-death signal.
    bool ok = true;
    for (int i = 0; i < 1000 && ok; ++i) {
        ok = support::write_line_fd(child.stdin_fd(), "lease 1");
    }
    EXPECT_FALSE(ok);
}

TEST(SubprocessTest, ExecFailureExits127) {
    support::ChildProcess child =
        support::spawn_child({"/nonexistent/binary/for/sure"});
    ASSERT_TRUE(child.valid());
    const int status = support::wait_exit(child);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 127);
}

#endif  // !_WIN32
