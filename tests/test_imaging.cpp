// Tests for the vision substrate: buffers, I/O, filters, components,
// quads/homography, fiducial markers, Hough circles, grid fitting and the
// full plate-reading pipeline on synthetic camera frames.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "color/mixing.hpp"
#include "imaging/components.hpp"
#include "imaging/draw.hpp"
#include "imaging/fiducial.hpp"
#include "imaging/filters.hpp"
#include "imaging/gridfit.hpp"
#include "imaging/hough.hpp"
#include "imaging/image.hpp"
#include "imaging/plate_render.hpp"
#include "imaging/ppm.hpp"
#include "imaging/quad.hpp"
#include "imaging/well_reader.hpp"
#include "support/common.hpp"
#include "support/random.hpp"

using namespace sdl::imaging;
using sdl::color::Rgb8;
using sdl::support::Rng;

// ------------------------------------------------------------------ image

TEST(ImageBuffer, PixelRoundTrip) {
    Image img(10, 6, {1, 2, 3});
    EXPECT_EQ(img.pixel(0, 0), (Rgb8{1, 2, 3}));
    img.set_pixel(9, 5, {200, 100, 50});
    EXPECT_EQ(img.pixel(9, 5), (Rgb8{200, 100, 50}));
    EXPECT_TRUE(img.in_bounds(9, 5));
    EXPECT_FALSE(img.in_bounds(10, 5));
    EXPECT_FALSE(img.in_bounds(-1, 0));
}

TEST(ImageBuffer, GrayConversionWeights) {
    Image img(1, 1, {255, 0, 0});
    EXPECT_NEAR(to_gray(img).at(0, 0), 0.299F, 1e-5F);
    Image green(1, 1, {0, 255, 0});
    EXPECT_NEAR(to_gray(green).at(0, 0), 0.587F, 1e-5F);
}

TEST(ImageBuffer, BilinearSampling) {
    GrayImage g(2, 2);
    g.at(0, 0) = 0.0F;
    g.at(1, 0) = 1.0F;
    g.at(0, 1) = 0.0F;
    g.at(1, 1) = 1.0F;
    EXPECT_NEAR(sample_bilinear(g, 0.5, 0.5), 0.5F, 1e-6F);
    EXPECT_NEAR(sample_bilinear(g, 0.0, 0.0), 0.0F, 1e-6F);
    EXPECT_NEAR(sample_bilinear(g, -5.0, 0.0), 0.0F, 1e-6F);  // clamped
}

TEST(ImageBuffer, MeanColorInDisk) {
    Image img(20, 20, {10, 20, 30});
    fill_circle(img, {10, 10}, 5, {100, 120, 140});
    const Rgb8 mean = mean_color_in_disk(img, 10, 10, 3);
    EXPECT_NEAR(mean.r, 100, 2);
    EXPECT_NEAR(mean.g, 120, 2);
    EXPECT_NEAR(mean.b, 140, 2);
}

// -------------------------------------------------------------------- ppm

TEST(Ppm, EncodeDecodeRoundTrip) {
    Rng rng(3);
    Image img(13, 7);
    for (int y = 0; y < 7; ++y) {
        for (int x = 0; x < 13; ++x) {
            img.set_pixel(x, y,
                          {static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256})),
                           static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256})),
                           static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256}))});
        }
    }
    const Image back = decode_ppm(encode_ppm(img));
    ASSERT_EQ(back.width(), 13);
    ASSERT_EQ(back.height(), 7);
    for (int y = 0; y < 7; ++y) {
        for (int x = 0; x < 13; ++x) EXPECT_EQ(back.pixel(x, y), img.pixel(x, y));
    }
}

TEST(Ppm, FileRoundTrip) {
    Image img(4, 4, {9, 8, 7});
    const std::string path = ::testing::TempDir() + "/sdl_test.ppm";
    save_ppm(img, path);
    const Image back = load_ppm(path);
    EXPECT_EQ(back.pixel(3, 3), (Rgb8{9, 8, 7}));
}

TEST(Ppm, RejectsMalformed) {
    EXPECT_THROW(decode_ppm("P3\n1 1\n255\n"), sdl::support::Error);
    EXPECT_THROW(decode_ppm("P6\n2 2\n255\nxx"), sdl::support::Error);
    EXPECT_THROW(load_ppm("/nonexistent/file.ppm"), sdl::support::Error);
}

// ---------------------------------------------------------------- filters

TEST(Filters, GaussianBlurPreservesMeanAndSmooths) {
    Rng rng(5);
    GrayImage img(32, 32);
    for (auto& v : img.values()) v = static_cast<float>(rng.uniform());
    const GrayImage blurred = gaussian_blur(img, 1.5);

    double mean_in = 0.0, mean_out = 0.0;
    for (const float v : img.values()) mean_in += v;
    for (const float v : blurred.values()) mean_out += v;
    EXPECT_NEAR(mean_out / 1024.0, mean_in / 1024.0, 0.02);

    // Variance must drop substantially.
    double var_in = 0.0, var_out = 0.0;
    for (const float v : img.values()) var_in += (v - mean_in / 1024) * (v - mean_in / 1024);
    for (const float v : blurred.values())
        var_out += (v - mean_out / 1024) * (v - mean_out / 1024);
    EXPECT_LT(var_out, var_in * 0.3);
}

TEST(Filters, SobelDetectsVerticalEdge) {
    GrayImage img(10, 10);
    for (int y = 0; y < 10; ++y) {
        for (int x = 5; x < 10; ++x) img.at(x, y) = 1.0F;
    }
    const Gradients g = sobel(img);
    EXPECT_GT(g.gx.at(5, 5), 1.0F);         // strong horizontal derivative
    EXPECT_NEAR(g.gy.at(5, 5), 0.0F, 1e-5F);  // no vertical derivative
    EXPECT_NEAR(g.gx.at(2, 5), 0.0F, 1e-5F);  // flat region
}

TEST(Filters, ThresholdBelow) {
    GrayImage img(4, 1);
    img.at(0, 0) = 0.1F;
    img.at(1, 0) = 0.4F;
    img.at(2, 0) = 0.6F;
    img.at(3, 0) = 0.9F;
    const BinaryImage mask = threshold_below(img, 0.5F);
    EXPECT_TRUE(mask.at(0, 0));
    EXPECT_TRUE(mask.at(1, 0));
    EXPECT_FALSE(mask.at(2, 0));
    EXPECT_EQ(mask.count(), 2u);
}

TEST(Filters, AdaptiveThresholdFindsDarkSpotDespiteGradient) {
    // A dark dot on a bright background with a strong global ramp: a
    // fixed threshold fails, the adaptive one doesn't.
    GrayImage img(64, 64);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            img.at(x, y) = 0.4F + 0.5F * static_cast<float>(x) / 64.0F;
        }
    }
    for (int y = 30; y < 34; ++y) {
        for (int x = 54; x < 58; ++x) img.at(x, y) -= 0.3F;  // dark spot, bright side
    }
    const BinaryImage mask = adaptive_threshold(img, 15, 0.1F);
    EXPECT_TRUE(mask.at(55, 31));
    EXPECT_FALSE(mask.at(10, 10));
    EXPECT_FALSE(mask.at(60, 60));
}

TEST(Filters, AdaptiveThresholdValidatesWindow) {
    GrayImage img(8, 8);
    EXPECT_THROW((void)adaptive_threshold(img, 4, 0.1F), sdl::support::LogicError);
}

// ------------------------------------------------------------- components

TEST(Components, LabelsTwoSeparateBlobs) {
    BinaryImage mask(20, 10);
    for (int y = 1; y < 4; ++y)
        for (int x = 1; x < 4; ++x) mask.set(x, y, true);
    for (int y = 5; y < 9; ++y)
        for (int x = 10; x < 16; ++x) mask.set(x, y, true);
    const Labeling lab = label_components(mask);
    ASSERT_EQ(lab.blobs.size(), 2u);
    EXPECT_EQ(lab.blobs[0].area, 9u);
    EXPECT_EQ(lab.blobs[1].area, 24u);
    EXPECT_NEAR(lab.blobs[0].centroid.x, 2.0, 1e-9);
    EXPECT_EQ(lab.label_at(2, 2), 0);
    EXPECT_EQ(lab.label_at(12, 6), 1);
    EXPECT_EQ(lab.label_at(0, 0), -1);
}

TEST(Components, DiagonalPixelsAreConnected) {
    BinaryImage mask(4, 4);
    mask.set(0, 0, true);
    mask.set(1, 1, true);
    mask.set(2, 2, true);
    const Labeling lab = label_components(mask);
    ASSERT_EQ(lab.blobs.size(), 1u);
    EXPECT_EQ(lab.blobs[0].area, 3u);
}

TEST(Components, MinAreaFiltersSpeckle) {
    BinaryImage mask(10, 10);
    mask.set(0, 0, true);  // single-pixel speckle
    for (int y = 4; y < 8; ++y)
        for (int x = 4; x < 8; ++x) mask.set(x, y, true);
    const Labeling lab = label_components(mask, 4);
    ASSERT_EQ(lab.blobs.size(), 1u);
    EXPECT_EQ(lab.blobs[0].area, 16u);
    EXPECT_EQ(lab.label_at(0, 0), -1);  // speckle erased
}

TEST(Components, BoundaryOfSolidSquareIsItsPerimeter) {
    BinaryImage mask(12, 12);
    for (int y = 2; y < 10; ++y)
        for (int x = 2; x < 10; ++x) mask.set(x, y, true);
    const Labeling lab = label_components(mask);
    const auto boundary = boundary_pixels(lab, 0);
    // 8x8 square: perimeter pixels = 64 - 36 interior = 28.
    EXPECT_EQ(boundary.size(), 28u);
}

// ------------------------------------------------------------------ quads

TEST(Quad, ExtractsAxisAlignedSquareCorners) {
    BinaryImage mask(40, 40);
    for (int y = 10; y < 30; ++y)
        for (int x = 10; x < 30; ++x) mask.set(x, y, true);
    const Labeling lab = label_components(mask);
    const auto quad = extract_quad(boundary_pixels(lab, 0));
    ASSERT_TRUE(quad.has_value());
    EXPECT_GT(squareness(*quad), 0.9);
    EXPECT_NEAR(mean_side(*quad), 19.0, 2.0);
    // First corner nearest top-left.
    EXPECT_NEAR((*quad)[0].x, 10, 1.5);
    EXPECT_NEAR((*quad)[0].y, 10, 1.5);
}

TEST(Quad, ExtractsRotatedSquare) {
    Image img(100, 100, {255, 255, 255});
    const Vec2 c{50, 50};
    const double side = 40;
    const double angle = 0.4;
    const Vec2 ux = Vec2{1, 0}.rotated(angle);
    const Vec2 uy = Vec2{0, 1}.rotated(angle);
    const Vec2 corners[4] = {c - ux * (side / 2) - uy * (side / 2),
                             c + ux * (side / 2) - uy * (side / 2),
                             c + ux * (side / 2) + uy * (side / 2),
                             c - ux * (side / 2) + uy * (side / 2)};
    fill_quad(img, corners, {0, 0, 0});
    const BinaryImage mask = threshold_below(to_gray(img), 0.5F);
    const Labeling lab = label_components(mask);
    ASSERT_EQ(lab.blobs.size(), 1u);
    const auto quad = extract_quad(boundary_pixels(lab, 0));
    ASSERT_TRUE(quad.has_value());
    EXPECT_GT(squareness(*quad), 0.85);
    EXPECT_NEAR(mean_side(*quad), side, 3.0);
}

TEST(Quad, RejectsDegenerateSets) {
    std::vector<Vec2> line;
    for (int i = 0; i < 20; ++i) line.push_back({static_cast<double>(i), 2.0});
    EXPECT_FALSE(extract_quad(line).has_value());
    std::vector<Vec2> tiny{{0, 0}, {1, 0}, {0, 1}};
    EXPECT_FALSE(extract_quad(tiny).has_value());
}

TEST(Homography, MapsUnitSquareCornersExactly) {
    const Quad quad{Vec2{10, 20}, Vec2{110, 25}, Vec2{105, 130}, Vec2{8, 118}};
    const Homography h = Homography::unit_square_to(quad);
    const Vec2 p00 = h.apply({0, 0});
    const Vec2 p10 = h.apply({1, 0});
    const Vec2 p11 = h.apply({1, 1});
    const Vec2 p01 = h.apply({0, 1});
    EXPECT_NEAR(p00.x, 10, 1e-6);
    EXPECT_NEAR(p10.x, 110, 1e-6);
    EXPECT_NEAR(p11.y, 130, 1e-6);
    EXPECT_NEAR(p01.y, 118, 1e-6);
    // Center maps inside the quad.
    const Vec2 mid = h.apply({0.5, 0.5});
    EXPECT_GT(mid.x, 8);
    EXPECT_LT(mid.x, 110);
}

// -------------------------------------------------------------- fiducials

TEST(Fiducial, RotateCodeFourTimesIsIdentity) {
    const std::uint16_t code = 0xB31C;
    std::uint16_t r = code;
    for (int i = 0; i < 4; ++i) r = rotate_code_cw(r);
    EXPECT_EQ(r, code);
}

TEST(Fiducial, HammingBasics) {
    EXPECT_EQ(hamming(0x0000, 0xFFFF), 16);
    EXPECT_EQ(hamming(0x00FF, 0x00FF), 0);
    EXPECT_EQ(hamming(0b1010, 0b0101), 4);
}

TEST(Fiducial, DictionaryHasPairwiseRotationalDistance) {
    const MarkerDictionary& dict = MarkerDictionary::standard();
    ASSERT_GE(dict.size(), 16u);
    for (std::size_t i = 0; i < dict.size(); ++i) {
        for (std::size_t j = 0; j < dict.size(); ++j) {
            std::uint16_t rot = dict.code(j);
            for (int k = 0; k < 4; ++k) {
                if (!(i == j && k == 0)) {
                    EXPECT_GE(hamming(dict.code(i), rot), 4)
                        << "codes " << i << "," << j << " rotation " << k;
                }
                rot = rotate_code_cw(rot);
            }
        }
    }
}

TEST(Fiducial, MatchIdentifiesRotation) {
    const MarkerDictionary& dict = MarkerDictionary::standard();
    const std::uint16_t code = dict.code(5);
    std::uint16_t rotated = code;
    for (int k = 0; k < 4; ++k) {
        const auto m = dict.match(rotated, 0);
        ASSERT_TRUE(m.has_value());
        EXPECT_EQ(m->id, 5u);
        EXPECT_EQ(m->rotation, k);
        rotated = rotate_code_cw(rotated);
    }
}

TEST(Fiducial, MatchCorrectsSingleBitError) {
    const MarkerDictionary& dict = MarkerDictionary::standard();
    const std::uint16_t corrupted = dict.code(3) ^ 0x0010;
    const auto m = dict.match(corrupted, 1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->id, 3u);
    EXPECT_EQ(m->distance, 1);
}

TEST(Fiducial, DetectsRenderedMarker) {
    Rng rng(17);
    Image img(320, 240, {80, 80, 85});
    render_marker(img, MarkerDictionary::standard(), 7, {160, 120}, 60, 0.0);
    const auto detections = detect_markers(img, MarkerDictionary::standard());
    ASSERT_EQ(detections.size(), 1u);
    EXPECT_EQ(detections[0].id, 7u);
    EXPECT_NEAR(detections[0].center.x, 160, 2.0);
    EXPECT_NEAR(detections[0].center.y, 120, 2.0);
    EXPECT_NEAR(detections[0].side, 60, 3.0);
    EXPECT_NEAR(detections[0].angle, 0.0, 0.05);
}

// Rotation sweep: the detector must recover id, pose and orientation.
class FiducialRotation : public ::testing::TestWithParam<double> {};

TEST_P(FiducialRotation, RecoversAngle) {
    const double angle = GetParam();
    Image img(320, 240, {85, 85, 90});
    render_marker(img, MarkerDictionary::standard(), 4, {160, 120}, 64, angle);
    const auto detections = detect_markers(img, MarkerDictionary::standard());
    ASSERT_EQ(detections.size(), 1u) << "angle " << angle;
    EXPECT_EQ(detections[0].id, 4u);
    // Compare angles modulo 2π.
    double diff = detections[0].angle - angle;
    while (diff > std::numbers::pi) diff -= 2 * std::numbers::pi;
    while (diff < -std::numbers::pi) diff += 2 * std::numbers::pi;
    EXPECT_NEAR(diff, 0.0, 0.06) << "angle " << angle;
}

INSTANTIATE_TEST_SUITE_P(Angles, FiducialRotation,
                         ::testing::Values(-0.5, -0.2, 0.0, 0.1, 0.3, 0.7, 1.2, 2.0, 3.0));

TEST(Fiducial, SurvivesSensorNoise) {
    Rng rng(23);
    Image img(320, 240, {90, 90, 95});
    render_marker(img, MarkerDictionary::standard(), 11, {150, 110}, 56, 0.25);
    // Add Gaussian noise comparable to the renderer's default.
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            const Rgb8 p = img.pixel(x, y);
            auto jitter = [&](std::uint8_t v) {
                const long q = std::lround(v + rng.normal(0.0, 3.0));
                return static_cast<std::uint8_t>(q < 0 ? 0 : (q > 255 ? 255 : q));
            };
            img.set_pixel(x, y, {jitter(p.r), jitter(p.g), jitter(p.b)});
        }
    }
    const auto detections = detect_markers(img, MarkerDictionary::standard());
    ASSERT_EQ(detections.size(), 1u);
    EXPECT_EQ(detections[0].id, 11u);
}

TEST(Fiducial, NoFalsePositivesOnBlankFrame) {
    Rng rng(29);
    Image img(320, 240, {120, 120, 125});
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            const auto v = static_cast<std::uint8_t>(120 + rng.uniform_int(std::int64_t{-8}, std::int64_t{8}));
            img.set_pixel(x, y, {v, v, v});
        }
    }
    EXPECT_TRUE(detect_markers(img, MarkerDictionary::standard()).empty());
}

// ------------------------------------------------------------------ hough

TEST(Hough, FindsSingleHighContrastCircle) {
    Image img(120, 120, {220, 220, 220});
    fill_circle(img, {60, 60}, 15, {40, 40, 40});
    HoughParams params;
    params.r_min = 8;
    params.r_max = 24;
    params.min_center_dist = 20;
    const auto circles = hough_circles(to_gray(img), params);
    ASSERT_GE(circles.size(), 1u);
    EXPECT_NEAR(circles[0].center.x, 60, 2.0);
    EXPECT_NEAR(circles[0].center.y, 60, 2.0);
    EXPECT_NEAR(circles[0].radius, 15, 2.0);
}

TEST(Hough, FindsMultipleCircles) {
    Image img(200, 100, {230, 230, 230});
    fill_circle(img, {40, 50}, 12, {30, 30, 30});
    fill_circle(img, {100, 50}, 12, {30, 30, 30});
    fill_circle(img, {160, 50}, 12, {30, 30, 30});
    HoughParams params;
    params.r_min = 8;
    params.r_max = 16;
    params.min_center_dist = 25;
    const auto circles = hough_circles(to_gray(img), params);
    EXPECT_EQ(circles.size(), 3u);
}

TEST(Hough, RespectsRoi) {
    Image img(200, 100, {230, 230, 230});
    fill_circle(img, {40, 50}, 12, {30, 30, 30});
    fill_circle(img, {160, 50}, 12, {30, 30, 30});
    HoughParams params;
    params.r_min = 8;
    params.r_max = 16;
    params.min_center_dist = 25;
    params.roi = {100, 0, 200, 100};
    const auto circles = hough_circles(to_gray(img), params);
    ASSERT_EQ(circles.size(), 1u);
    EXPECT_GT(circles[0].center.x, 100);
}

TEST(Hough, EmptyImageYieldsNoCircles) {
    GrayImage g(64, 64, 0.5F);
    HoughParams params;
    params.r_min = 5;
    params.r_max = 10;
    EXPECT_TRUE(hough_circles(g, params).empty());
}

TEST(Hough, RingShapedWellIsDetected) {
    // Wells are rings with colored interiors, not solid disks.
    Image img(120, 120, {206, 204, 198});
    fill_ring(img, {60, 60}, 14, 10.5, {38, 38, 40});
    fill_circle(img, {60, 60}, 10.5, {120, 120, 120});
    HoughParams params;
    params.r_min = 8;
    params.r_max = 20;
    params.min_center_dist = 20;
    const auto circles = hough_circles(to_gray(img), params);
    ASSERT_GE(circles.size(), 1u);
    EXPECT_NEAR(circles[0].center.x, 60, 2.0);
    // The dominant edge is the outer rim (r = 14); blur biases the radius
    // histogram slightly outward.
    EXPECT_NEAR(circles[0].radius, 14.0, 3.0);
}

TEST(Hough, InvalidRadiusRangeThrows) {
    GrayImage g(32, 32);
    HoughParams params;
    params.r_min = 10;
    params.r_max = 5;
    EXPECT_THROW((void)hough_circles(g, params), sdl::support::LogicError);
}

// ---------------------------------------------------------------- gridfit

namespace {
GridModel nominal_grid() {
    return {{100.0, 80.0}, {1.5, 30.0}, {29.0, -1.0}};
}
}  // namespace

TEST(GridFit, ToGridInvertsCenter) {
    const GridModel m = nominal_grid();
    const Vec2 p = m.center(3, 7);
    const Vec2 rc = m.to_grid(p);
    EXPECT_NEAR(rc.x, 3.0, 1e-9);
    EXPECT_NEAR(rc.y, 7.0, 1e-9);
}

TEST(GridFit, RecoversPerturbedGridFromNoisyPoints) {
    Rng rng(31);
    const GridModel truth = nominal_grid();
    // Start from a deliberately offset initial model.
    GridModel initial = truth;
    initial.origin = initial.origin + Vec2{4.0, -3.0};
    initial.row_axis = initial.row_axis * 1.05;

    std::vector<Vec2> points;
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 12; ++c) {
            if ((r * 12 + c) % 5 == 0) continue;  // 20% missing (false negatives)
            points.push_back(truth.center(r, c) + Vec2{rng.normal(0, 0.5), rng.normal(0, 0.5)});
        }
    }
    const GridFit fit = fit_grid(points, initial, 8, 12, 12.0);
    EXPECT_GT(fit.inliers, 70u);
    EXPECT_LT(fit.mean_residual, 1.0);
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 12; ++c) {
            EXPECT_LT(distance(fit.model.center(r, c), truth.center(r, c)), 1.5);
        }
    }
}

TEST(GridFit, RobustToFalsePositives) {
    Rng rng(37);
    const GridModel truth = nominal_grid();
    std::vector<Vec2> points;
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 12; ++c) {
            points.push_back(truth.center(r, c) + Vec2{rng.normal(0, 0.3), rng.normal(0, 0.3)});
        }
    }
    // Inject clutter far from any node.
    for (int i = 0; i < 15; ++i) {
        points.push_back({rng.uniform(0, 500), rng.uniform(0, 400)});
    }
    const GridFit fit = fit_grid(points, truth, 8, 12, 10.0);
    EXPECT_LT(fit.mean_residual, 0.8);
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 12; ++c) {
            EXPECT_LT(distance(fit.model.center(r, c), truth.center(r, c)), 1.0);
        }
    }
}

TEST(GridFit, TooFewPointsKeepsInitialModel) {
    const GridModel initial = nominal_grid();
    const std::vector<Vec2> points{initial.center(0, 0), initial.center(1, 1)};
    const GridFit fit = fit_grid(points, initial, 8, 12, 10.0);
    EXPECT_EQ(fit.inliers, 2u);
    EXPECT_NEAR(fit.model.origin.x, initial.origin.x, 1e-12);
}

// ------------------------------------------------------- full plate read

namespace {

/// A scene plus ground-truth well colors following the color-picker setup.
struct TestScene {
    PlateScene scene;
    std::vector<Rgb8> colors;
};

TestScene make_scene(double angle, std::uint64_t color_seed) {
    TestScene ts;
    ts.scene.angle_rad = angle;
    Rng rng(color_seed);
    const sdl::color::BeerLambertMixer mixer(sdl::color::DyeLibrary::cmyk());
    for (int i = 0; i < ts.scene.geometry.well_count(); ++i) {
        std::vector<double> ratios{rng.uniform(), rng.uniform(), rng.uniform(),
                                   rng.uniform() * 0.4};
        ts.colors.push_back(mixer.mix_ratios(ratios));
    }
    return ts;
}

}  // namespace

TEST(WellReader, ReadsAllWellColorsAccurately) {
    TestScene ts = make_scene(0.0, 41);
    Rng rng(43);
    const Image frame = render_plate(ts.scene, ts.colors, rng);
    WellReadParams params;
    params.geometry = ts.scene.geometry;
    const WellReadout readout = read_plate(frame, params);
    ASSERT_TRUE(readout.ok) << readout.error;
    ASSERT_EQ(readout.colors.size(), 96u);
    EXPECT_EQ(readout.marker.id, ts.scene.marker_id);

    // Center prediction accuracy against ground truth.
    const auto truth = true_well_centers(ts.scene);
    for (std::size_t i = 0; i < truth.size(); ++i) {
        EXPECT_LT(distance(readout.centers[i], truth[i]), 3.0) << "well " << i;
    }
    // Color accuracy: within noise + illumination tolerance.
    double worst = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        worst = std::max(worst, sdl::color::rgb_distance(readout.colors[i], ts.colors[i]));
    }
    EXPECT_LT(worst, 25.0);
    double total = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        total += sdl::color::rgb_distance(readout.colors[i], ts.colors[i]);
    }
    EXPECT_LT(total / 96.0, 10.0);
}

TEST(WellReader, WorksWithRotatedPlate) {
    TestScene ts = make_scene(0.12, 47);  // ~7° camera misalignment
    Rng rng(53);
    const Image frame = render_plate(ts.scene, ts.colors, rng);
    WellReadParams params;
    params.geometry = ts.scene.geometry;
    const WellReadout readout = read_plate(frame, params);
    ASSERT_TRUE(readout.ok) << readout.error;
    const auto truth = true_well_centers(ts.scene);
    for (std::size_t i = 0; i < truth.size(); ++i) {
        EXPECT_LT(distance(readout.centers[i], truth[i]), 3.5) << "well " << i;
    }
}

TEST(WellReader, GridRescuesEmptyLowContrastWells) {
    // Only 30 of 96 wells filled: empty wells have faint rims that Hough
    // often misses; the grid fit must still predict their centers.
    TestScene ts = make_scene(0.05, 59);
    std::vector<bool> filled(96, false);
    for (int i = 0; i < 30; ++i) filled[static_cast<std::size_t>(i)] = true;
    Rng rng(61);
    const Image frame = render_plate(ts.scene, ts.colors, rng, &filled);
    WellReadParams params;
    params.geometry = ts.scene.geometry;
    const WellReadout readout = read_plate(frame, params);
    ASSERT_TRUE(readout.ok) << readout.error;

    const auto truth = true_well_centers(ts.scene);
    for (std::size_t i = 0; i < truth.size(); ++i) {
        EXPECT_LT(distance(readout.centers[i], truth[i]), 4.0) << "well " << i;
    }
    // Filled wells read their colors correctly.
    for (std::size_t i = 0; i < 30; ++i) {
        EXPECT_LT(sdl::color::rgb_distance(readout.colors[i], ts.colors[i]), 25.0)
            << "well " << i;
    }
}

TEST(WellReader, FailsGracefullyWithoutMarker) {
    Image frame(640, 480, {100, 100, 100});
    WellReadParams params;
    const WellReadout readout = read_plate(frame, params);
    EXPECT_FALSE(readout.ok);
    EXPECT_FALSE(readout.error.empty());
    EXPECT_TRUE(readout.colors.empty());
}

TEST(WellReader, ReportsDiagnostics) {
    TestScene ts = make_scene(0.0, 67);
    Rng rng(71);
    const Image frame = render_plate(ts.scene, ts.colors, rng);
    WellReadParams params;
    params.geometry = ts.scene.geometry;
    const WellReadout readout = read_plate(frame, params);
    ASSERT_TRUE(readout.ok);
    EXPECT_GT(readout.hough_circles_found, 48u);  // most wells detected
    EXPECT_EQ(readout.wells_with_circle + readout.wells_rescued, 96u);
    EXPECT_LT(readout.grid_residual_px, 2.5);
}
