// Additional imaging coverage: drawing primitives, filter edge cases,
// renderer properties, and detector behaviour at the margins.
#include <gtest/gtest.h>

#include <cmath>

#include "imaging/components.hpp"
#include "imaging/draw.hpp"
#include "imaging/fiducial.hpp"
#include "imaging/filters.hpp"
#include "imaging/gridfit.hpp"
#include "imaging/hough.hpp"
#include "imaging/plate_render.hpp"
#include "imaging/well_reader.hpp"
#include "support/common.hpp"
#include "support/random.hpp"

using namespace sdl::imaging;
using sdl::color::Rgb8;
using sdl::support::Rng;

// ------------------------------------------------------------------ draw

TEST(Draw, FillRectClipsToImage) {
    Image img(10, 10, {0, 0, 0});
    fill_rect(img, {-5, -5, 5, 5}, {255, 255, 255});
    EXPECT_EQ(img.pixel(0, 0), (Rgb8{255, 255, 255}));
    EXPECT_EQ(img.pixel(4, 4), (Rgb8{255, 255, 255}));
    EXPECT_EQ(img.pixel(5, 5), (Rgb8{0, 0, 0}));
    // Entirely outside: no-op, no crash.
    fill_rect(img, {20, 20, 30, 30}, {9, 9, 9});
}

TEST(Draw, FillCircleCoversExpectedArea) {
    Image img(50, 50, {0, 0, 0});
    fill_circle(img, {25, 25}, 10, {255, 255, 255});
    std::size_t white = 0;
    for (int y = 0; y < 50; ++y) {
        for (int x = 0; x < 50; ++x) {
            if (img.pixel(x, y).r > 128) ++white;
        }
    }
    const double area = 3.14159265 * 100.0;
    EXPECT_NEAR(static_cast<double>(white), area, area * 0.06);
}

TEST(Draw, FillCircleAntialiasesEdges) {
    Image img(30, 30, {0, 0, 0});
    fill_circle(img, {15.5, 15.5}, 8, {255, 255, 255});
    // Some pixels must be partially covered (neither black nor white).
    int partial = 0;
    for (int y = 0; y < 30; ++y) {
        for (int x = 0; x < 30; ++x) {
            const auto v = img.pixel(x, y).r;
            if (v > 20 && v < 235) ++partial;
        }
    }
    EXPECT_GT(partial, 4);
}

TEST(Draw, FillRingLeavesInteriorUntouched) {
    Image img(60, 60, {10, 10, 10});
    fill_ring(img, {30, 30}, 20, 14, {200, 200, 200});
    EXPECT_EQ(img.pixel(30, 30), (Rgb8{10, 10, 10}));     // center
    EXPECT_GT(img.pixel(30 + 17, 30).r, 150);             // mid-ring
    EXPECT_EQ(img.pixel(30 + 25, 30), (Rgb8{10, 10, 10}));  // outside
}

TEST(Draw, FillQuadHandlesBothWindingOrders) {
    Image a(20, 20, {0, 0, 0});
    Image b(20, 20, {0, 0, 0});
    const Vec2 cw[4] = {{4, 4}, {15, 4}, {15, 15}, {4, 15}};
    const Vec2 ccw[4] = {{4, 4}, {4, 15}, {15, 15}, {15, 4}};
    fill_quad(a, cw, {255, 255, 255});
    fill_quad(b, ccw, {255, 255, 255});
    for (int y = 0; y < 20; ++y) {
        for (int x = 0; x < 20; ++x) {
            EXPECT_EQ(a.pixel(x, y), b.pixel(x, y)) << x << "," << y;
        }
    }
    EXPECT_EQ(a.pixel(10, 10), (Rgb8{255, 255, 255}));
}

TEST(Draw, LineConnectsEndpoints) {
    Image img(20, 20, {0, 0, 0});
    draw_line(img, {2, 3}, {17, 12}, {255, 0, 0});
    EXPECT_EQ(img.pixel(2, 3).r, 255);
    EXPECT_EQ(img.pixel(17, 12).r, 255);
}

TEST(Draw, CircleOutlinePointsLieOnRadius) {
    Image img(60, 60, {0, 0, 0});
    draw_circle(img, {30, 30}, 12, {0, 255, 0});
    for (int y = 0; y < 60; ++y) {
        for (int x = 0; x < 60; ++x) {
            if (img.pixel(x, y).g == 255) {
                const double d = std::hypot(x - 30.0, y - 30.0);
                EXPECT_NEAR(d, 12.0, 1.2);
            }
        }
    }
}

// --------------------------------------------------------------- filters

TEST(FiltersExtra, ZeroSigmaBlurIsIdentity) {
    Rng rng(3);
    GrayImage img(8, 8);
    for (auto& v : img.values()) v = static_cast<float>(rng.uniform());
    const GrayImage out = gaussian_blur(img, 0.0);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) EXPECT_EQ(out.at(x, y), img.at(x, y));
    }
}

TEST(FiltersExtra, SobelDetectsHorizontalEdge) {
    GrayImage img(10, 10);
    for (int y = 5; y < 10; ++y) {
        for (int x = 0; x < 10; ++x) img.at(x, y) = 1.0F;
    }
    const Gradients g = sobel(img);
    EXPECT_GT(g.gy.at(5, 5), 1.0F);
    EXPECT_NEAR(g.gx.at(5, 5), 0.0F, 1e-5F);
}

TEST(FiltersExtra, AdaptiveThresholdOnUniformImageIsEmpty) {
    GrayImage img(32, 32, 0.5F);
    const BinaryImage mask = adaptive_threshold(img, 9, 0.05F);
    EXPECT_EQ(mask.count(), 0u);
}

TEST(FiltersExtra, RegionMeanClipsAndAverages) {
    GrayImage img(10, 10, 0.25F);
    for (int x = 0; x < 10; ++x) img.at(x, 0) = 1.0F;
    EXPECT_NEAR(region_mean(img, {0, 0, 10, 1}), 1.0F, 1e-6F);
    EXPECT_NEAR(region_mean(img, {-100, 1, 100, 100}), 0.25F, 1e-6F);
    EXPECT_EQ(region_mean(img, {50, 50, 60, 60}), 0.0F);  // fully clipped
}

// ------------------------------------------------------------ components

TEST(ComponentsExtra, LargeBlobDoesNotOverflow) {
    // Flood fill is iterative; a frame-sized blob must be fine.
    BinaryImage mask(300, 300, true);
    const Labeling lab = label_components(mask);
    ASSERT_EQ(lab.blobs.size(), 1u);
    EXPECT_EQ(lab.blobs[0].area, 90000u);
}

TEST(ComponentsExtra, LabelsStayDenseAfterMinAreaFiltering) {
    BinaryImage mask(30, 10);
    mask.set(0, 0, true);  // speck (dropped)
    for (int x = 5; x < 9; ++x)
        for (int y = 2; y < 6; ++y) mask.set(x, y, true);  // blob A
    mask.set(15, 0, true);  // speck (dropped)
    for (int x = 20; x < 26; ++x)
        for (int y = 3; y < 8; ++y) mask.set(x, y, true);  // blob B
    const Labeling lab = label_components(mask, 4);
    ASSERT_EQ(lab.blobs.size(), 2u);
    EXPECT_EQ(lab.blobs[0].label, 0);
    EXPECT_EQ(lab.blobs[1].label, 1);
    EXPECT_EQ(lab.label_at(6, 3), 0);
    EXPECT_EQ(lab.label_at(22, 5), 1);
}

// -------------------------------------------------------------- fiducial

class FiducialSize : public ::testing::TestWithParam<double> {};

TEST_P(FiducialSize, DetectsAcrossScales) {
    const double side = GetParam();
    Image img(400, 300, {90, 90, 95});
    render_marker(img, MarkerDictionary::standard(), 2, {200, 150}, side, 0.15);
    const auto detections = detect_markers(img, MarkerDictionary::standard());
    ASSERT_EQ(detections.size(), 1u) << "side " << side;
    EXPECT_EQ(detections[0].id, 2u);
    // Boundary-pixel quantization gives an absolute ~2-3 px floor, which
    // dominates for small markers.
    EXPECT_NEAR(detections[0].side, side, std::max(side * 0.08, 3.0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FiducialSize,
                         ::testing::Values(24.0, 36.0, 56.0, 80.0, 120.0));

TEST(FiducialExtra, TwoMarkersInOneFrame) {
    Image img(400, 200, {85, 85, 90});
    render_marker(img, MarkerDictionary::standard(), 3, {100, 100}, 50, 0.0);
    render_marker(img, MarkerDictionary::standard(), 9, {300, 100}, 50, 0.4);
    const auto detections = detect_markers(img, MarkerDictionary::standard());
    ASSERT_EQ(detections.size(), 2u);
    const bool has3 = detections[0].id == 3 || detections[1].id == 3;
    const bool has9 = detections[0].id == 9 || detections[1].id == 9;
    EXPECT_TRUE(has3);
    EXPECT_TRUE(has9);
}

// ----------------------------------------------------------------- hough

TEST(HoughExtra, ResultsSortedByVotes) {
    Image img(200, 100, {230, 230, 230});
    fill_circle(img, {50, 50}, 14, {30, 30, 30});   // big circle: more votes
    fill_circle(img, {150, 50}, 8, {30, 30, 30});   // small circle
    HoughParams params;
    params.r_min = 5;
    params.r_max = 18;
    params.min_center_dist = 30;
    const auto circles = hough_circles(to_gray(img), params);
    ASSERT_GE(circles.size(), 2u);
    EXPECT_GE(circles[0].votes, circles[1].votes);
    EXPECT_NEAR(circles[0].center.x, 50, 3.0);  // the stronger one first
}

TEST(HoughExtra, NmsMergesAdjacentPeaks) {
    Image img(100, 100, {230, 230, 230});
    fill_circle(img, {50, 50}, 12, {30, 30, 30});
    HoughParams params;
    params.r_min = 8;
    params.r_max = 16;
    params.min_center_dist = 15;
    const auto circles = hough_circles(to_gray(img), params);
    EXPECT_EQ(circles.size(), 1u);  // one physical circle -> one detection
}

// ------------------------------------------------------------- grid fit

TEST(GridFitExtra, DegenerateAxesThrow) {
    GridModel m;
    m.origin = {0, 0};
    m.row_axis = {1, 0};
    m.col_axis = {2, 0};  // parallel to row_axis
    EXPECT_THROW((void)m.to_grid({5, 5}), sdl::support::Error);
}

// -------------------------------------------------------------- renderer

TEST(RendererExtra, VignetteDarkensCorners) {
    PlateScene scene;
    scene.noise_sigma = 0.0;
    scene.vignette = 0.25;
    scene.illum_gradient = {0.0, 0.0};
    std::vector<Rgb8> colors(96, Rgb8{120, 120, 120});
    Rng rng(1);
    const Image frame = render_plate(scene, colors, rng);
    // Deck background: corner must be darker than the frame-center deck.
    const Rgb8 corner = frame.pixel(3, 3);
    const Rgb8 center = frame.pixel(frame.width() / 2, 20);
    EXPECT_LT(corner.r, center.r);
}

TEST(RendererExtra, NoiseIsDeterministicPerSeed) {
    PlateScene scene;
    std::vector<Rgb8> colors(96, Rgb8{120, 120, 120});
    Rng rng_a(5), rng_b(5), rng_c(6);
    const Image a = render_plate(scene, colors, rng_a);
    const Image b = render_plate(scene, colors, rng_b);
    const Image c = render_plate(scene, colors, rng_c);
    EXPECT_EQ(a.pixel(100, 100), b.pixel(100, 100));
    EXPECT_EQ(a.pixel(321, 417), b.pixel(321, 417));
    bool differs = false;
    for (int x = 0; x < a.width() && !differs; x += 7) {
        if (!(a.pixel(x, 50) == c.pixel(x, 50))) differs = true;
    }
    EXPECT_TRUE(differs);
}

// ------------------------------------------------------------ well read

TEST(WellReaderExtra, RejectsWrongMarkerId) {
    PlateScene scene;  // renders marker id 7
    std::vector<Rgb8> colors(96, Rgb8{120, 120, 120});
    Rng rng(9);
    const Image frame = render_plate(scene, colors, rng);
    WellReadParams params;
    params.geometry = scene.geometry;
    params.marker_id = 3;  // wrong id
    const WellReadout readout = read_plate(frame, params);
    EXPECT_FALSE(readout.ok);
}

TEST(WellReaderExtra, AcceptsSpecificMarkerId) {
    PlateScene scene;
    std::vector<Rgb8> colors(96, Rgb8{120, 120, 120});
    Rng rng(9);
    const Image frame = render_plate(scene, colors, rng);
    WellReadParams params;
    params.geometry = scene.geometry;
    params.marker_id = static_cast<int>(scene.marker_id);
    const WellReadout readout = read_plate(frame, params);
    EXPECT_TRUE(readout.ok);
    EXPECT_EQ(readout.marker.id, scene.marker_id);
}
