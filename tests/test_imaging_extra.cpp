// Additional imaging coverage: drawing primitives, filter edge cases,
// renderer properties, and detector behaviour at the margins.
#include <gtest/gtest.h>

#include <cmath>

#include "imaging/components.hpp"
#include "imaging/draw.hpp"
#include "imaging/fiducial.hpp"
#include "imaging/filters.hpp"
#include "imaging/gridfit.hpp"
#include "imaging/hough.hpp"
#include "imaging/plate_render.hpp"
#include "imaging/ppm.hpp"
#include "imaging/well_reader.hpp"
#include "support/common.hpp"
#include "support/random.hpp"

using namespace sdl::imaging;
using sdl::color::Rgb8;
using sdl::support::Rng;

// ------------------------------------------------------------------ draw

TEST(Draw, FillRectClipsToImage) {
    Image img(10, 10, {0, 0, 0});
    fill_rect(img, {-5, -5, 5, 5}, {255, 255, 255});
    EXPECT_EQ(img.pixel(0, 0), (Rgb8{255, 255, 255}));
    EXPECT_EQ(img.pixel(4, 4), (Rgb8{255, 255, 255}));
    EXPECT_EQ(img.pixel(5, 5), (Rgb8{0, 0, 0}));
    // Entirely outside: no-op, no crash.
    fill_rect(img, {20, 20, 30, 30}, {9, 9, 9});
}

TEST(Draw, FillCircleCoversExpectedArea) {
    Image img(50, 50, {0, 0, 0});
    fill_circle(img, {25, 25}, 10, {255, 255, 255});
    std::size_t white = 0;
    for (int y = 0; y < 50; ++y) {
        for (int x = 0; x < 50; ++x) {
            if (img.pixel(x, y).r > 128) ++white;
        }
    }
    const double area = 3.14159265 * 100.0;
    EXPECT_NEAR(static_cast<double>(white), area, area * 0.06);
}

TEST(Draw, FillCircleAntialiasesEdges) {
    Image img(30, 30, {0, 0, 0});
    fill_circle(img, {15.5, 15.5}, 8, {255, 255, 255});
    // Some pixels must be partially covered (neither black nor white).
    int partial = 0;
    for (int y = 0; y < 30; ++y) {
        for (int x = 0; x < 30; ++x) {
            const auto v = img.pixel(x, y).r;
            if (v > 20 && v < 235) ++partial;
        }
    }
    EXPECT_GT(partial, 4);
}

TEST(Draw, FillRingLeavesInteriorUntouched) {
    Image img(60, 60, {10, 10, 10});
    fill_ring(img, {30, 30}, 20, 14, {200, 200, 200});
    EXPECT_EQ(img.pixel(30, 30), (Rgb8{10, 10, 10}));     // center
    EXPECT_GT(img.pixel(30 + 17, 30).r, 150);             // mid-ring
    EXPECT_EQ(img.pixel(30 + 25, 30), (Rgb8{10, 10, 10}));  // outside
}

TEST(Draw, FillQuadHandlesBothWindingOrders) {
    Image a(20, 20, {0, 0, 0});
    Image b(20, 20, {0, 0, 0});
    const Vec2 cw[4] = {{4, 4}, {15, 4}, {15, 15}, {4, 15}};
    const Vec2 ccw[4] = {{4, 4}, {4, 15}, {15, 15}, {15, 4}};
    fill_quad(a, cw, {255, 255, 255});
    fill_quad(b, ccw, {255, 255, 255});
    for (int y = 0; y < 20; ++y) {
        for (int x = 0; x < 20; ++x) {
            EXPECT_EQ(a.pixel(x, y), b.pixel(x, y)) << x << "," << y;
        }
    }
    EXPECT_EQ(a.pixel(10, 10), (Rgb8{255, 255, 255}));
}

TEST(Draw, LineConnectsEndpoints) {
    Image img(20, 20, {0, 0, 0});
    draw_line(img, {2, 3}, {17, 12}, {255, 0, 0});
    EXPECT_EQ(img.pixel(2, 3).r, 255);
    EXPECT_EQ(img.pixel(17, 12).r, 255);
}

TEST(Draw, CircleOutlinePointsLieOnRadius) {
    Image img(60, 60, {0, 0, 0});
    draw_circle(img, {30, 30}, 12, {0, 255, 0});
    for (int y = 0; y < 60; ++y) {
        for (int x = 0; x < 60; ++x) {
            if (img.pixel(x, y).g == 255) {
                const double d = std::hypot(x - 30.0, y - 30.0);
                EXPECT_NEAR(d, 12.0, 1.2);
            }
        }
    }
}

// --------------------------------------------------------------- filters

TEST(FiltersExtra, ZeroSigmaBlurIsIdentity) {
    Rng rng(3);
    GrayImage img(8, 8);
    for (auto& v : img.values()) v = static_cast<float>(rng.uniform());
    const GrayImage out = gaussian_blur(img, 0.0);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) EXPECT_EQ(out.at(x, y), img.at(x, y));
    }
}

TEST(FiltersExtra, SobelDetectsHorizontalEdge) {
    GrayImage img(10, 10);
    for (int y = 5; y < 10; ++y) {
        for (int x = 0; x < 10; ++x) img.at(x, y) = 1.0F;
    }
    const Gradients g = sobel(img);
    EXPECT_GT(g.gy.at(5, 5), 1.0F);
    EXPECT_NEAR(g.gx.at(5, 5), 0.0F, 1e-5F);
}

TEST(FiltersExtra, AdaptiveThresholdOnUniformImageIsEmpty) {
    GrayImage img(32, 32, 0.5F);
    const BinaryImage mask = adaptive_threshold(img, 9, 0.05F);
    EXPECT_EQ(mask.count(), 0u);
}

TEST(FiltersExtra, RegionMeanClipsAndAverages) {
    GrayImage img(10, 10, 0.25F);
    for (int x = 0; x < 10; ++x) img.at(x, 0) = 1.0F;
    EXPECT_NEAR(region_mean(img, {0, 0, 10, 1}), 1.0F, 1e-6F);
    EXPECT_NEAR(region_mean(img, {-100, 1, 100, 100}), 0.25F, 1e-6F);
    EXPECT_EQ(region_mean(img, {50, 50, 60, 60}), 0.0F);  // fully clipped
}

// ------------------------------------------------------------ components

TEST(ComponentsExtra, LargeBlobDoesNotOverflow) {
    // Flood fill is iterative; a frame-sized blob must be fine.
    BinaryImage mask(300, 300, true);
    const Labeling lab = label_components(mask);
    ASSERT_EQ(lab.blobs.size(), 1u);
    EXPECT_EQ(lab.blobs[0].area, 90000u);
}

TEST(ComponentsExtra, LabelsStayDenseAfterMinAreaFiltering) {
    BinaryImage mask(30, 10);
    mask.set(0, 0, true);  // speck (dropped)
    for (int x = 5; x < 9; ++x)
        for (int y = 2; y < 6; ++y) mask.set(x, y, true);  // blob A
    mask.set(15, 0, true);  // speck (dropped)
    for (int x = 20; x < 26; ++x)
        for (int y = 3; y < 8; ++y) mask.set(x, y, true);  // blob B
    const Labeling lab = label_components(mask, 4);
    ASSERT_EQ(lab.blobs.size(), 2u);
    EXPECT_EQ(lab.blobs[0].label, 0);
    EXPECT_EQ(lab.blobs[1].label, 1);
    EXPECT_EQ(lab.label_at(6, 3), 0);
    EXPECT_EQ(lab.label_at(22, 5), 1);
}

// -------------------------------------------------------------- fiducial

class FiducialSize : public ::testing::TestWithParam<double> {};

TEST_P(FiducialSize, DetectsAcrossScales) {
    const double side = GetParam();
    Image img(400, 300, {90, 90, 95});
    render_marker(img, MarkerDictionary::standard(), 2, {200, 150}, side, 0.15);
    const auto detections = detect_markers(img, MarkerDictionary::standard());
    ASSERT_EQ(detections.size(), 1u) << "side " << side;
    EXPECT_EQ(detections[0].id, 2u);
    // Boundary-pixel quantization gives an absolute ~2-3 px floor, which
    // dominates for small markers.
    EXPECT_NEAR(detections[0].side, side, std::max(side * 0.08, 3.0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FiducialSize,
                         ::testing::Values(24.0, 36.0, 56.0, 80.0, 120.0));

TEST(FiducialExtra, TwoMarkersInOneFrame) {
    Image img(400, 200, {85, 85, 90});
    render_marker(img, MarkerDictionary::standard(), 3, {100, 100}, 50, 0.0);
    render_marker(img, MarkerDictionary::standard(), 9, {300, 100}, 50, 0.4);
    const auto detections = detect_markers(img, MarkerDictionary::standard());
    ASSERT_EQ(detections.size(), 2u);
    const bool has3 = detections[0].id == 3 || detections[1].id == 3;
    const bool has9 = detections[0].id == 9 || detections[1].id == 9;
    EXPECT_TRUE(has3);
    EXPECT_TRUE(has9);
}

// ----------------------------------------------------------------- hough

TEST(HoughExtra, ResultsSortedByVotes) {
    Image img(200, 100, {230, 230, 230});
    fill_circle(img, {50, 50}, 14, {30, 30, 30});   // big circle: more votes
    fill_circle(img, {150, 50}, 8, {30, 30, 30});   // small circle
    HoughParams params;
    params.r_min = 5;
    params.r_max = 18;
    params.min_center_dist = 30;
    const auto circles = hough_circles(to_gray(img), params);
    ASSERT_GE(circles.size(), 2u);
    EXPECT_GE(circles[0].votes, circles[1].votes);
    EXPECT_NEAR(circles[0].center.x, 50, 3.0);  // the stronger one first
}

TEST(HoughExtra, NmsMergesAdjacentPeaks) {
    Image img(100, 100, {230, 230, 230});
    fill_circle(img, {50, 50}, 12, {30, 30, 30});
    HoughParams params;
    params.r_min = 8;
    params.r_max = 16;
    params.min_center_dist = 15;
    const auto circles = hough_circles(to_gray(img), params);
    EXPECT_EQ(circles.size(), 1u);  // one physical circle -> one detection
}

// ------------------------------------------------------------- grid fit

TEST(GridFitExtra, DegenerateAxesThrow) {
    GridModel m;
    m.origin = {0, 0};
    m.row_axis = {1, 0};
    m.col_axis = {2, 0};  // parallel to row_axis
    EXPECT_THROW((void)m.to_grid({5, 5}), sdl::support::Error);
}

// -------------------------------------------------------------- renderer

TEST(RendererExtra, VignetteDarkensCorners) {
    PlateScene scene;
    scene.noise_sigma = 0.0;
    scene.vignette = 0.25;
    scene.illum_gradient = {0.0, 0.0};
    std::vector<Rgb8> colors(96, Rgb8{120, 120, 120});
    Rng rng(1);
    const Image frame = render_plate(scene, colors, rng);
    // Deck background: corner must be darker than the frame-center deck.
    const Rgb8 corner = frame.pixel(3, 3);
    const Rgb8 center = frame.pixel(frame.width() / 2, 20);
    EXPECT_LT(corner.r, center.r);
}

TEST(RendererExtra, NoiseIsDeterministicPerSeed) {
    PlateScene scene;
    std::vector<Rgb8> colors(96, Rgb8{120, 120, 120});
    Rng rng_a(5), rng_b(5), rng_c(6);
    const Image a = render_plate(scene, colors, rng_a);
    const Image b = render_plate(scene, colors, rng_b);
    const Image c = render_plate(scene, colors, rng_c);
    EXPECT_EQ(a.pixel(100, 100), b.pixel(100, 100));
    EXPECT_EQ(a.pixel(321, 417), b.pixel(321, 417));
    bool differs = false;
    for (int x = 0; x < a.width() && !differs; x += 7) {
        if (!(a.pixel(x, 50) == c.pixel(x, 50))) differs = true;
    }
    EXPECT_TRUE(differs);
}

// ------------------------------------------------------------ well read

TEST(WellReaderExtra, RejectsWrongMarkerId) {
    PlateScene scene;  // renders marker id 7
    std::vector<Rgb8> colors(96, Rgb8{120, 120, 120});
    Rng rng(9);
    const Image frame = render_plate(scene, colors, rng);
    WellReadParams params;
    params.geometry = scene.geometry;
    params.marker_id = 3;  // wrong id
    const WellReadout readout = read_plate(frame, params);
    EXPECT_FALSE(readout.ok);
}

TEST(WellReaderExtra, AcceptsSpecificMarkerId) {
    PlateScene scene;
    std::vector<Rgb8> colors(96, Rgb8{120, 120, 120});
    Rng rng(9);
    const Image frame = render_plate(scene, colors, rng);
    WellReadParams params;
    params.geometry = scene.geometry;
    params.marker_id = static_cast<int>(scene.marker_id);
    const WellReadout readout = read_plate(frame, params);
    EXPECT_TRUE(readout.ok);
    EXPECT_EQ(readout.marker.id, scene.marker_id);
}

// ------------------------------------------------- hot-path identity
//
// The zero-allocation vision pipeline (scratch pools, region-restricted
// marker detection, base-raster render cache) carries one contract:
// every output is bitwise identical to the one-shot allocating flow.

namespace {

/// A varied frame sequence: rotating fills and colors per frame index.
Image hot_path_frame(const PlateScene& scene, int frame_index, Rng& rng) {
    Rng color_rng(1000 + static_cast<std::uint64_t>(frame_index) * 17);
    std::vector<Rgb8> colors;
    std::vector<bool> filled;
    for (int i = 0; i < scene.geometry.well_count(); ++i) {
        colors.push_back({static_cast<std::uint8_t>(color_rng.uniform_int(256)),
                          static_cast<std::uint8_t>(color_rng.uniform_int(256)),
                          static_cast<std::uint8_t>(color_rng.uniform_int(256))});
        filled.push_back(i <= (frame_index * 13) % scene.geometry.well_count());
    }
    return render_plate(scene, colors, rng, &filled);
}

void expect_same_readout(const WellReadout& a, const WellReadout& b,
                         const char* what, int frame_index) {
    ASSERT_EQ(a.ok, b.ok) << what << " frame " << frame_index;
    EXPECT_EQ(a.error, b.error);
    ASSERT_EQ(a.colors.size(), b.colors.size()) << what << " frame " << frame_index;
    for (std::size_t i = 0; i < a.colors.size(); ++i) {
        EXPECT_EQ(a.colors[i], b.colors[i]) << what << " frame " << frame_index
                                            << " well " << i;
        EXPECT_EQ(a.centers[i].x, b.centers[i].x) << what << " well " << i;
        EXPECT_EQ(a.centers[i].y, b.centers[i].y) << what << " well " << i;
    }
    EXPECT_EQ(a.hough_circles_found, b.hough_circles_found) << what;
    EXPECT_EQ(a.wells_with_circle, b.wells_with_circle) << what;
    EXPECT_EQ(a.wells_rescued, b.wells_rescued) << what;
    EXPECT_EQ(a.grid_residual_px, b.grid_residual_px) << what;
    if (a.ok) {
        EXPECT_EQ(a.marker.id, b.marker.id);
        EXPECT_EQ(a.marker.side, b.marker.side);
        EXPECT_EQ(a.marker.angle, b.marker.angle);
        EXPECT_EQ(a.marker.center.x, b.marker.center.x);
        EXPECT_EQ(a.marker.center.y, b.marker.center.y);
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_EQ(a.marker.corners[c].x, b.marker.corners[c].x);
            EXPECT_EQ(a.marker.corners[c].y, b.marker.corners[c].y);
        }
    }
}

}  // namespace

TEST(HotPath, BlurScratchBitwiseMatchesOneShot) {
    Rng rng(71);
    BlurScratch scratch;
    GrayImage out;
    // Alternating sizes and sigmas stress buffer reuse across shapes.
    const int sizes[][2] = {{64, 48}, {31, 77}, {64, 48}, {5, 5}, {200, 3}};
    const double sigmas[] = {0.8, 1.0, 2.5, 0.8, 1.3};
    for (int round = 0; round < 5; ++round) {
        GrayImage img(sizes[round][0], sizes[round][1]);
        for (float& v : img.values()) v = static_cast<float>(rng.uniform());
        const GrayImage want = gaussian_blur(img, sigmas[round]);
        gaussian_blur(img, sigmas[round], out, scratch);
        ASSERT_EQ(out.width(), want.width());
        ASSERT_EQ(out.height(), want.height());
        for (int y = 0; y < want.height(); ++y) {
            for (int x = 0; x < want.width(); ++x) {
                ASSERT_EQ(out.at(x, y), want.at(x, y))
                    << "round " << round << " (" << x << "," << y << ")";
            }
        }
    }
}

TEST(HotPath, SobelAndAdaptiveThresholdScratchBitwise) {
    Rng rng(73);
    Gradients grad;
    BinaryImage mask;
    std::vector<double> integral;
    for (const int size : {40, 17, 40, 9}) {
        GrayImage img(size, size + 3);
        for (float& v : img.values()) v = static_cast<float>(rng.uniform());
        const Gradients want = sobel(img);
        sobel(img, grad);
        for (int y = 0; y < img.height(); ++y) {
            for (int x = 0; x < img.width(); ++x) {
                ASSERT_EQ(grad.gx.at(x, y), want.gx.at(x, y));
                ASSERT_EQ(grad.gy.at(x, y), want.gy.at(x, y));
            }
        }
        const BinaryImage want_mask = adaptive_threshold(img, 9, 0.05F);
        adaptive_threshold(img, 9, 0.05F, mask, integral);
        for (int y = 0; y < img.height(); ++y) {
            for (int x = 0; x < img.width(); ++x) {
                ASSERT_EQ(mask.at(x, y), want_mask.at(x, y));
            }
        }
    }
}

TEST(HotPath, RenderCacheByteIdenticalAcross100Frames) {
    // PlateRenderer (cached base raster, per-column illumination) vs
    // one-shot render_plate with a twin rng stream: 100 frames of
    // changing well contents must encode to identical PPM bytes.
    PlateScene scene;
    scene.angle_rad = 0.04;
    Rng rng_cached(91);
    Rng rng_fresh(91);
    PlateRenderer renderer;
    for (int frame_index = 0; frame_index < 100; ++frame_index) {
        Rng color_rng(2000 + static_cast<std::uint64_t>(frame_index));
        std::vector<Rgb8> colors;
        std::vector<bool> filled;
        for (int i = 0; i < scene.geometry.well_count(); ++i) {
            colors.push_back({static_cast<std::uint8_t>(color_rng.uniform_int(256)),
                              static_cast<std::uint8_t>(color_rng.uniform_int(256)),
                              static_cast<std::uint8_t>(color_rng.uniform_int(256))});
            filled.push_back((i + frame_index) % 3 != 0);
        }
        const Image cached = renderer.render(scene, colors, rng_cached, &filled);
        const Image fresh = render_plate(scene, colors, rng_fresh, &filled);
        ASSERT_EQ(encode_ppm(cached), encode_ppm(fresh)) << "frame " << frame_index;
    }
    EXPECT_EQ(renderer.base_rebuilds(), 1u);
    EXPECT_EQ(renderer.base_hits(), 99u);
}

TEST(HotPath, RenderCacheRebuildsWhenSceneChanges) {
    PlateScene scene;
    std::vector<Rgb8> colors(96, Rgb8{90, 140, 60});
    Rng rng_a(3), rng_b(3);
    PlateRenderer renderer;
    (void)renderer.render(scene, colors, rng_a);
    PlateScene moved = scene;
    moved.marker_center = {200.0, 260.0};
    const Image cached = renderer.render(moved, colors, rng_a);
    (void)render_plate(scene, colors, rng_b);
    const Image fresh = render_plate(moved, colors, rng_b);
    EXPECT_EQ(renderer.base_rebuilds(), 2u);
    ASSERT_EQ(encode_ppm(cached), encode_ppm(fresh));
}

TEST(HotPath, ScratchReadPlateBitwiseAcrossFrames) {
    PlateScene scene;
    scene.noise_sigma = 3.0;
    WellReadParams params;
    params.geometry = scene.geometry;
    FrameScratch scratch;
    Rng rng(77);
    for (int frame_index = 0; frame_index < 8; ++frame_index) {
        const Image frame = hot_path_frame(scene, frame_index, rng);
        const WellReadout fresh = read_plate(frame, params);
        const WellReadout pooled = read_plate(frame, params, scratch);
        expect_same_readout(pooled, fresh, "scratch", frame_index);
    }
}

TEST(HotPath, PlateReaderRoiPathBitwiseAcrossFrameSequence) {
    // The session reader must serve every frame — first (cold), steady
    // state (ROI hits), a glitched frame (marker gone), and the recovery
    // frame after it — with bits identical to one-shot read_plate.
    PlateScene scene;
    scene.angle_rad = -0.03;
    scene.noise_sigma = 2.5;
    WellReadParams params;
    params.geometry = scene.geometry;
    PlateReader reader(params);
    Rng rng(79);
    for (int frame_index = 0; frame_index < 12; ++frame_index) {
        PlateScene frame_scene = scene;
        const bool glitched = frame_index == 5;
        if (glitched) frame_scene.marker_center = {-10000.0, -10000.0};
        const Image frame = hot_path_frame(frame_scene, frame_index, rng);
        const WellReadout fresh = read_plate(frame, params);
        const WellReadout session = reader.read(frame);
        expect_same_readout(session, fresh, "session", frame_index);
        EXPECT_EQ(session.ok, !glitched) << frame_index;
        if (frame_index > 0 && !glitched && frame_index != 6) {
            EXPECT_TRUE(session.roi_fast_path) << frame_index;
        }
    }
    // Cold start, glitch, and the post-glitch rescan are the only full
    // scans; everything else rides the marker-ROI fast path.
    EXPECT_EQ(reader.full_scans(), 3u);
    EXPECT_EQ(reader.roi_hits(), 9u);
}

TEST(HotPath, RegionRestrictedDetectionMatchesFullFrame) {
    PlateScene scene;
    scene.noise_sigma = 2.0;
    std::vector<Rgb8> colors(96, Rgb8{120, 60, 180});
    Rng rng(83);
    const Image frame = render_plate(scene, colors, rng);
    const MarkerDetectParams params;

    const auto full = detect_markers(frame, MarkerDictionary::standard(), params);
    ASSERT_EQ(full.size(), 1u);

    // Region comfortably around the marker: must reproduce the detection
    // exactly, in frame coordinates.
    const int cx = static_cast<int>(full[0].center.x);
    const int cy = static_cast<int>(full[0].center.y);
    const int reach = static_cast<int>(full[0].side) + marker_region_margin(params) + 10;
    MarkerScratch scratch;
    std::vector<MarkerDetection> regional;
    (void)detect_markers_in_region(frame, MarkerDictionary::standard(), params,
                                   {cx - reach, cy - reach, cx + reach, cy + reach},
                                   scratch, regional);
    ASSERT_EQ(regional.size(), 1u);
    EXPECT_EQ(regional[0].id, full[0].id);
    EXPECT_EQ(regional[0].side, full[0].side);
    EXPECT_EQ(regional[0].angle, full[0].angle);
    EXPECT_EQ(regional[0].center.x, full[0].center.x);
    EXPECT_EQ(regional[0].center.y, full[0].center.y);
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(regional[0].corners[c].x, full[0].corners[c].x);
        EXPECT_EQ(regional[0].corners[c].y, full[0].corners[c].y);
    }

    // A region that slices through the marker must skip the contaminated
    // blob (no subtly-different detection) and report the skip.
    std::vector<MarkerDetection> sliced;
    const bool sliced_clean = detect_markers_in_region(
        frame, MarkerDictionary::standard(), params, {cx - reach, cy - reach, cx, cy},
        scratch, sliced);
    EXPECT_FALSE(sliced_clean);
    EXPECT_TRUE(sliced.empty());
}
