// Unit and property tests for the JSON document model, parser and writer.
#include <gtest/gtest.h>

#include <string>

#include "support/common.hpp"
#include "support/json.hpp"

namespace json = sdl::support::json;
using sdl::support::ParseError;

TEST(Json, ParsesScalars) {
    EXPECT_TRUE(json::parse("null").is_null());
    EXPECT_EQ(json::parse("true").as_bool(), true);
    EXPECT_EQ(json::parse("false").as_bool(), false);
    EXPECT_EQ(json::parse("42").as_int(), 42);
    EXPECT_EQ(json::parse("-7").as_int(), -7);
    EXPECT_DOUBLE_EQ(json::parse("3.25").as_double(), 3.25);
    EXPECT_DOUBLE_EQ(json::parse("1e3").as_double(), 1000.0);
    EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegersStayIntegers) {
    const json::Value v = json::parse("123456789012345");
    EXPECT_TRUE(v.is_int());
    EXPECT_EQ(v.as_int(), 123456789012345LL);
    EXPECT_TRUE(json::parse("1.0").is_double());
}

TEST(Json, ParsesNestedStructures) {
    const json::Value v = json::parse(R"({
        "name": "run_12",
        "samples": [1, 2, 3],
        "meta": {"batch": 8, "ok": true, "score": 10.5}
    })");
    EXPECT_EQ(v.at("name").as_string(), "run_12");
    EXPECT_EQ(v.at("samples").as_array().size(), 3u);
    EXPECT_EQ(v.at("samples").as_array()[2].as_int(), 3);
    EXPECT_EQ(v.at("meta").at("batch").as_int(), 8);
    EXPECT_TRUE(v.at("meta").at("ok").as_bool());
    EXPECT_DOUBLE_EQ(v.at("meta").at("score").as_double(), 10.5);
}

TEST(Json, ObjectPreservesInsertionOrder) {
    json::Value v = json::Value::object();
    v.set("zebra", 1);
    v.set("alpha", 2);
    v.set("mid", 3);
    std::string keys;
    for (const auto& [k, val] : v.as_object()) keys += k + ",";
    EXPECT_EQ(keys, "zebra,alpha,mid,");
}

TEST(Json, SetOverwritesExistingKey) {
    json::Value v = json::Value::object();
    v.set("x", 1);
    v.set("x", 2);
    EXPECT_EQ(v.at("x").as_int(), 2);
    EXPECT_EQ(v.as_object().size(), 1u);
}

TEST(Json, StringEscapes) {
    const json::Value v = json::parse(R"("line\nbreak\t\"quoted\" back\\slash")");
    EXPECT_EQ(v.as_string(), "line\nbreak\t\"quoted\" back\\slash");
}

TEST(Json, UnicodeEscapes) {
    EXPECT_EQ(json::parse(R"("A")").as_string(), "A");
    EXPECT_EQ(json::parse(R"("é")").as_string(), "\xc3\xa9");          // é
    EXPECT_EQ(json::parse(R"("中")").as_string(), "\xe4\xb8\xad");      // 中
    EXPECT_EQ(json::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");  // 😀
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_THROW(json::parse(""), ParseError);
    EXPECT_THROW(json::parse("{"), ParseError);
    EXPECT_THROW(json::parse("[1,]"), ParseError);
    EXPECT_THROW(json::parse("{\"a\" 1}"), ParseError);
    EXPECT_THROW(json::parse("{'a': 1}"), ParseError);
    EXPECT_THROW(json::parse("tru"), ParseError);
    EXPECT_THROW(json::parse("1 2"), ParseError);
    EXPECT_THROW(json::parse("\"unterminated"), ParseError);
    EXPECT_THROW(json::parse("[1] trailing"), ParseError);
}

TEST(Json, ReportsErrorLocation) {
    try {
        (void)json::parse("{\n  \"a\": ?\n}");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_GT(e.column(), 1u);
    }
}

TEST(Json, RejectsDeepNesting) {
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_THROW(json::parse(deep), ParseError);
}

TEST(Json, DumpCompact) {
    json::Value v = json::Value::object();
    v.set("a", 1);
    v.set("b", json::Array{json::Value(true), json::Value(nullptr)});
    EXPECT_EQ(v.dump(), R"({"a":1,"b":[true,null]})");
}

TEST(Json, PrettyPrintsIndented) {
    json::Value v = json::Value::object();
    v.set("a", 1);
    const std::string text = v.pretty();
    EXPECT_NE(text.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(Json, DoublesSurviveRoundTripAsDoubles) {
    const json::Value v = json::parse(json::Value(2.0).dump());
    EXPECT_TRUE(v.is_double());
    EXPECT_DOUBLE_EQ(v.as_double(), 2.0);
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
    EXPECT_EQ(json::Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
    EXPECT_EQ(json::Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, GetOrFallbacks) {
    const json::Value v = json::parse(R"({"s": "x", "n": 2, "d": 2.5, "b": true})");
    EXPECT_EQ(v.get_or("s", std::string("def")), "x");
    EXPECT_EQ(v.get_or("missing", std::string("def")), "def");
    EXPECT_EQ(v.get_or("n", std::int64_t{9}), 2);
    EXPECT_DOUBLE_EQ(v.get_or("d", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(v.get_or("n", 0.0), 2.0);  // int readable as double
    EXPECT_EQ(v.get_or("b", false), true);
    EXPECT_EQ(v.get_or("missing", std::int64_t{9}), 9);
}

TEST(Json, TypeMismatchThrows) {
    const json::Value v = json::parse(R"({"a": 1})");
    EXPECT_THROW((void)v.at("a").as_string(), sdl::support::Error);
    EXPECT_THROW((void)v.at("missing"), sdl::support::Error);
    EXPECT_THROW((void)v.as_array(), sdl::support::Error);
}

TEST(Json, EqualityComparesAcrossIntAndDouble) {
    EXPECT_EQ(json::parse("3"), json::parse("3.0"));
    EXPECT_FALSE(json::parse("3") == json::parse("4"));
}

// Property: parse(dump(v)) == v for a structured document.
TEST(Json, RoundTripProperty) {
    const char* doc = R"({
      "experiment": "color_picker",
      "batch_sizes": [1, 2, 4, 8, 16, 32, 64],
      "target": {"r": 120, "g": 120, "b": 120},
      "scores": [29.5, 17.25, 10.125],
      "notes": "first batch random; solveré",
      "published": true,
      "failures": null
    })";
    const json::Value v = json::parse(doc);
    EXPECT_EQ(json::parse(v.dump()), v);
    EXPECT_EQ(json::parse(v.pretty()), v);
}

class JsonNumberRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(JsonNumberRoundTrip, Exact) {
    const double d = GetParam();
    const json::Value v = json::parse(json::Value(d).dump());
    EXPECT_DOUBLE_EQ(v.as_double(), d);
}

INSTANTIATE_TEST_SUITE_P(Values, JsonNumberRoundTrip,
                         ::testing::Values(0.0, 1.0, -1.5, 0.1, 1e-12, 3.0e17,
                                           230.625, -0.0078125, 1e300));
