// Tests for the dense linear algebra kernels (matrix ops, Cholesky,
// least squares) that the GP solver and the vision grid fit rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/fastmath.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/matrix.hpp"
#include "support/common.hpp"
#include "support/random.hpp"

using namespace sdl::linalg;
using sdl::support::Rng;

TEST(Matrix, BasicOps) {
    Matrix a(2, 3);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(0, 2) = 3;
    a(1, 0) = 4;
    a(1, 1) = 5;
    a(1, 2) = 6;

    const Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);

    const Vec v{1.0, 1.0, 1.0};
    const Vec av = a * v;
    EXPECT_DOUBLE_EQ(av[0], 6.0);
    EXPECT_DOUBLE_EQ(av[1], 15.0);
}

TEST(Matrix, MatmulAgainstHandComputed) {
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    Matrix b(2, 2);
    b(0, 0) = 5;
    b(0, 1) = 6;
    b(1, 0) = 7;
    b(1, 1) = 8;
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, IdentityIsNeutral) {
    Rng rng(5);
    Matrix a(4, 4);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(-2, 2);
    const Matrix ai = a * Matrix::identity(4);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(ai(i, j), a(i, j));
}

TEST(Matrix, DimensionMismatchThrows) {
    Matrix a(2, 3), b(2, 3);
    EXPECT_THROW((void)(a * b), sdl::support::LogicError);
    const Vec short_vec{1.0, 2.0};
    EXPECT_THROW((void)(a * short_vec), sdl::support::LogicError);
}

TEST(VecOps, DotAxpyNorm) {
    const Vec a{1, 2, 3};
    const Vec b{4, 5, 6};
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
    EXPECT_DOUBLE_EQ(norm2(Vec{3, 4}), 5.0);
    Vec y{1, 1, 1};
    axpy(2.0, a, y);
    EXPECT_DOUBLE_EQ(y[2], 7.0);
}

// --------------------------------------------------------------- cholesky

namespace {
/// Random SPD matrix A = B Bᵀ + boost·I. The default boost keeps the
/// matrix comfortably conditioned; the property sweeps also pass tiny
/// boosts (1e-6) so B Bᵀ's near-singular spectrum shows through and the
/// recurrences are exercised at bad conditioning, not just good.
Matrix random_spd(std::size_t n, Rng& rng, double boost) {
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1, 1);
    Matrix a = b * b.transposed();
    a.add_diagonal(boost);
    return a;
}
Matrix random_spd(std::size_t n, Rng& rng) {
    return random_spd(n, rng, static_cast<double>(n));
}

/// Sizes for the property sweeps: degenerate edges, primes that leave
/// blocking/unroll tails, and solver-realistic n.
constexpr std::size_t kPropertySizes[] = {1, 2, 3, 5, 8, 13, 17, 32, 48, 64};
constexpr double kDiagBoosts[] = {8.0, 1e-2, 1e-6};
constexpr std::uint64_t kPropertySeeds[] = {59, 113, 211};
}  // namespace

TEST(Cholesky, ReconstructsMatrix) {
    Rng rng(31);
    const Matrix a = random_spd(6, rng);
    const Cholesky chol(a);
    const Matrix l = chol.lower();
    const Matrix llt = l * l.transposed();
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(llt(i, j), a(i, j), 1e-9);
}

TEST(Cholesky, SolveSatisfiesSystem) {
    Rng rng(37);
    const Matrix a = random_spd(8, rng);
    Vec b(8);
    for (double& x : b) x = rng.uniform(-5, 5);
    const Vec x = Cholesky(a).solve(b);
    const Vec ax = a * x;
    for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(Cholesky, LogDetMatchesKnownMatrix) {
    // diag(4, 9) -> det = 36, logdet = log(36).
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(1, 1) = 9;
    EXPECT_NEAR(Cholesky(a).log_det(), std::log(36.0), 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 1;  // eigenvalues 3, -1
    EXPECT_THROW(Cholesky{a}, sdl::support::Error);
}

TEST(VecOps, CrossSqDistMatchesScalarLoop) {
    Rng rng(53);
    Matrix a(5, 4);
    Matrix b(7, 4);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t k = 0; k < 4; ++k) a(i, k) = rng.uniform(-2, 2);
    for (std::size_t j = 0; j < b.rows(); ++j)
        for (std::size_t k = 0; k < 4; ++k) b(j, k) = rng.uniform(-2, 2);

    const Matrix d2 = cross_sq_dist(a, b);
    ASSERT_EQ(d2.rows(), 5u);
    ASSERT_EQ(d2.cols(), 7u);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.rows(); ++j) {
            double want = 0.0;
            for (std::size_t k = 0; k < 4; ++k) {
                const double diff = a(i, k) - b(j, k);
                want += diff * diff;
            }
            // Bitwise: same accumulation order as the scalar loop.
            EXPECT_EQ(d2(i, j), want) << i << "," << j;
        }
    }
}

TEST(FastMath, FastExpTracksStdExpAndClamps) {
    Rng rng(67);
    // Accuracy across the range the GP actually uses (exponents <= 0)
    // plus the positive side: a few ulp of relative error.
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.uniform(-700.0, 700.0);
        const double want = std::exp(x);
        const double got = fast_exp(x);
        EXPECT_NEAR(got, want, std::abs(want) * 1e-14) << "x=" << x;
    }
    EXPECT_EQ(fast_exp(0.0), 1.0);
    // Out-of-range inputs clamp to the boundary values (documented
    // approximation, not IEEE exp): finite at both ends.
    EXPECT_EQ(fast_exp(-1e9), fast_exp(-708.0));
    EXPECT_EQ(fast_exp(1e9), fast_exp(709.0));
    EXPECT_GT(fast_exp(-708.0), 0.0);
    EXPECT_TRUE(std::isfinite(fast_exp(709.0)));
}

TEST(FastMath, VexpBitwiseMatchesScalarFastExp) {
    // vexp's contract: the array form runs the exact operations of the
    // scalar form per element, vectorized or not.
    Rng rng(71);
    std::vector<double> xs(1037);
    for (double& x : xs) x = rng.uniform(-90.0, 1.0);
    std::vector<double> out(xs.size());
    vexp(xs, out);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(out[i], fast_exp(xs[i])) << "i=" << i;
    }
    // In place too.
    std::vector<double> inplace = xs;
    vexp(inplace, inplace);
    EXPECT_EQ(inplace, out);
}

TEST(Cholesky, SolveLowerMultiBitwiseMatchesPerColumn) {
    // Property: for every size, RHS count, seed, and conditioning, the
    // blocked multi-RHS sweep carries the exact bits of the scalar
    // per-column forward substitution.
    for (const std::uint64_t seed : kPropertySeeds) {
        for (const std::size_t n : kPropertySizes) {
            Rng rng(seed + n * 331);
            const double boost = kDiagBoosts[(seed + n) % 3];
            const Matrix a = random_spd(n, rng, boost);
            const Cholesky chol(a);
            const std::size_t m = 1 + (seed + n * 7) % 60;
            Matrix b(n, m);
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < m; ++j) b(i, j) = rng.uniform(-3, 3);

            Matrix y = b;
            chol.solve_lower_multi(y);
            for (std::size_t j = 0; j < m; ++j) {
                Vec col(n);
                for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
                const Vec want = chol.solve_lower(col);
                for (std::size_t i = 0; i < n; ++i) {
                    EXPECT_EQ(y(i, j), want[i])
                        << "n=" << n << " m=" << m << " boost=" << boost << " seed="
                        << seed << " col " << j << " row " << i;
                }
            }
        }
    }
}

TEST(Cholesky, SolveLowerMultiFusedReductionsMatchDots) {
    // Property: the fused solve+reductions path equals the unfused
    // scalar flow — dot(b_col, weights) and dot(y_col, y_col) in
    // ascending-index order — at every size and conditioning.
    for (const std::size_t n : kPropertySizes) {
        Rng rng(61 + n * 977);
        const double boost = kDiagBoosts[n % 3];
        const Matrix a = random_spd(n, rng, boost);
        const Cholesky chol(a);
        const std::size_t m = 1 + (n * 11) % 40;
        Matrix b(n, m);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < m; ++j) b(i, j) = rng.uniform(-3, 3);
        Vec weights(n);
        for (double& w : weights) w = rng.uniform(-1, 1);

        Matrix y = b;
        Vec wsum(m);
        Vec sq(m);
        chol.solve_lower_multi_fused(y, weights, wsum, sq);

        for (std::size_t j = 0; j < m; ++j) {
            Vec col(n);
            for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
            const Vec solved = chol.solve_lower(col);
            EXPECT_EQ(wsum[j], dot(col, weights)) << "n=" << n << " col " << j;
            EXPECT_EQ(sq[j], dot(solved, solved)) << "n=" << n << " col " << j;
            for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y(i, j), solved[i]);
        }

        Matrix wrong_rows(n + 1, m);
        EXPECT_THROW(chol.solve_lower_multi(wrong_rows), sdl::support::LogicError);
        Vec short_sums(m - 1);
        if (m > 1) {
            EXPECT_THROW(chol.solve_lower_multi_fused(y, weights, short_sums, sq),
                         sdl::support::LogicError);
        }
    }
}

TEST(Cholesky, ExtendMatchesFullRefactorizationBitwise) {
    // The rank-1 extension runs the same recurrence in the same order as
    // factoring the (n+1)×(n+1) matrix from scratch, so the factors must
    // agree exactly — this is what lets the GP's incremental observe()
    // reproduce the batch refit bit for bit.
    // Property: at every base size, seed, and conditioning, a chain of
    // three extensions lands on the exact bits of factoring the final
    // matrix from scratch.
    constexpr std::size_t kGrow = 3;
    for (const std::uint64_t seed : kPropertySeeds) {
        for (const std::size_t n : kPropertySizes) {
            Rng rng(seed + n * 41);
            const double boost = kDiagBoosts[(seed + n) % 3];
            const Matrix big = random_spd(n + kGrow, rng, boost);
            Matrix base(n, n);
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j) base(i, j) = big(i, j);

            Cholesky incremental(base);
            for (std::size_t g = 0; g < kGrow; ++g) {
                const std::size_t grown = n + g;
                Vec b(grown);
                for (std::size_t i = 0; i < grown; ++i) b[i] = big(grown, i);
                incremental.extend(b, big(grown, grown));
            }
            const Cholesky full(big);
            ASSERT_EQ(incremental.size(), n + kGrow);
            for (std::size_t i = 0; i < n + kGrow; ++i) {
                for (std::size_t j = 0; j <= i; ++j) {
                    EXPECT_EQ(incremental.lower()(i, j), full.lower()(i, j))
                        << "n=" << n << " boost=" << boost << " seed=" << seed
                        << " L(" << i << "," << j << ")";
                }
            }
        }
    }
}

TEST(Cholesky, ExtendedFactorSolvesTheExtendedSystem) {
    Rng rng(43);
    const Matrix big = random_spd(7, rng);
    Matrix base(6, 6);
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j) base(i, j) = big(i, j);
    Vec b(6);
    for (std::size_t i = 0; i < 6; ++i) b[i] = big(6, i);
    Cholesky chol(base);
    chol.extend(b, big(6, 6));

    Vec rhs(7);
    for (double& x : rhs) x = rng.uniform(-3, 3);
    const Vec x = chol.solve(rhs);
    const Vec ax = big * x;
    for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-8);
}

TEST(Cholesky, ExtendRejectsIndefiniteGrowthAndKeepsFactor) {
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(1, 1) = 9;
    Cholesky chol(a);
    // b chosen so the Schur complement c - bᵀA⁻¹b is negative.
    EXPECT_THROW(chol.extend(Vec{4.0, 0.0}, 1.0), sdl::support::Error);
    EXPECT_EQ(chol.size(), 2u);  // untouched
    EXPECT_NO_THROW(chol.extend(Vec{1.0, 1.0}, 9.0));
    EXPECT_EQ(chol.size(), 3u);
}

TEST(Cholesky, JitterRescuesSemidefiniteMatrix) {
    // Rank-1 PSD matrix (singular): plain Cholesky fails, jittered works.
    Matrix a(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j) a(i, j) = 1.0;
    EXPECT_THROW(Cholesky{a}, sdl::support::Error);
    EXPECT_NO_THROW(cholesky_with_jitter(a));
}

TEST(Cholesky, NonSquareThrows) {
    EXPECT_THROW(Cholesky{Matrix(2, 3)}, sdl::support::LogicError);
}

// ------------------------------------------------------------------ lstsq

TEST(Lstsq, RecoversExactLinearModel) {
    // y = 2x + 1 sampled without noise.
    Matrix a(5, 2);
    Vec b(5);
    for (std::size_t i = 0; i < 5; ++i) {
        const double x = static_cast<double>(i);
        a(i, 0) = x;
        a(i, 1) = 1.0;
        b[i] = 2.0 * x + 1.0;
    }
    const Vec coef = lstsq(a, b);
    EXPECT_NEAR(coef[0], 2.0, 1e-10);
    EXPECT_NEAR(coef[1], 1.0, 1e-10);
}

TEST(Lstsq, RidgeShrinksSolution) {
    Matrix a(4, 1);
    Vec b(4);
    for (std::size_t i = 0; i < 4; ++i) {
        a(i, 0) = 1.0;
        b[i] = 10.0;
    }
    const Vec plain = lstsq(a, b);
    const Vec ridged = lstsq(a, b, 100.0);
    EXPECT_NEAR(plain[0], 10.0, 1e-10);
    EXPECT_LT(ridged[0], plain[0]);
}

TEST(Lstsq, UnderdeterminedThrows) {
    EXPECT_THROW(lstsq(Matrix(2, 3), Vec(2)), sdl::support::LogicError);
}

TEST(RobustLstsq, IgnoresGrossOutliers) {
    // y = 3x with two wild outliers; Huber IRLS should stay near slope 3,
    // ordinary least squares is dragged away.
    Rng rng(41);
    const std::size_t n = 30;
    Matrix a(n, 1);
    Vec b(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i) / n;
        a(i, 0) = x;
        b[i] = 3.0 * x + rng.normal(0.0, 0.01);
    }
    b[3] = 50.0;
    b[17] = -40.0;
    const Vec ols = lstsq(a, b);
    const Vec robust = robust_lstsq(a, b, 0.1);
    EXPECT_GT(std::fabs(ols[0] - 3.0), 1.0);
    EXPECT_NEAR(robust[0], 3.0, 0.5);
}

// Property sweep: solve accuracy holds across sizes.
class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, SolveResidualSmall) {
    Rng rng(GetParam() * 101 + 7);
    const std::size_t n = GetParam();
    const Matrix a = random_spd(n, rng);
    Vec b(n);
    for (double& x : b) x = rng.uniform(-1, 1);
    const Vec x = cholesky_with_jitter(a).solve(b);
    const Vec ax = a * x;
    double residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) residual = std::max(residual, std::fabs(ax[i] - b[i]));
    EXPECT_LT(residual, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u, 32u, 64u, 128u));
