// Tests for the SDL metrics module (TWH, CCWH, time-per-color, Table 1).
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "support/units.hpp"

using namespace sdl::metrics;
using sdl::support::Duration;
using sdl::support::TimePoint;
using sdl::wei::ActionStatus;
using sdl::wei::EventLog;
using sdl::wei::StepRecord;

namespace {

StepRecord step(const char* module, double start, double end,
                ActionStatus status = ActionStatus::Succeeded, bool robotic = true) {
    StepRecord r;
    r.workflow = "wf";
    r.step = "s";
    r.module = module;
    r.action = "a";
    r.start = TimePoint::from_seconds(start);
    r.end = TimePoint::from_seconds(end);
    r.status = status;
    r.robotic = robotic;
    return r;
}

}  // namespace

TEST(Metrics, BasicAccounting) {
    EventLog log;
    // One mix iteration, paper-calibrated shape.
    log.record_step(step("pf400", 0.0, 42.65));
    log.record_step(step("ot2", 42.65, 188.0));
    log.record_step(step("pf400", 188.0, 230.6));
    log.record_step(step("camera", 230.6, 232.1, ActionStatus::Succeeded, false));

    const std::vector<TimePoint> uploads{TimePoint::from_seconds(100),
                                         TimePoint::from_seconds(330),
                                         TimePoint::from_seconds(560)};
    const SdlMetrics m = compute_metrics(log, 1, uploads);
    EXPECT_EQ(m.commands_completed, 3u);  // camera excluded
    EXPECT_NEAR(m.synthesis_time.to_seconds(), 145.35, 0.01);
    EXPECT_NEAR(m.transfer_time.to_seconds(), 85.25, 0.01);
    EXPECT_NEAR(m.total_time.to_seconds(), 232.1, 1e-9);
    EXPECT_NEAR(m.time_per_color.to_seconds(), 232.1, 1e-9);
    EXPECT_NEAR(m.mean_upload_interval.to_seconds(), 230.0, 1e-9);
    EXPECT_EQ(m.interventions, 0);
    // No interventions: TWH equals the whole run.
    EXPECT_NEAR(m.time_without_humans.to_seconds(), 232.1, 1e-9);
}

TEST(Metrics, RejectedCommandsDoNotCount) {
    EventLog log;
    log.record_step(step("pf400", 0, 5, ActionStatus::Rejected));
    log.record_step(step("pf400", 5, 47.65));
    const SdlMetrics m = compute_metrics(log, 0, {});
    EXPECT_EQ(m.commands_completed, 1u);
    // Busy time counts only the successful attempt.
    EXPECT_NEAR(m.transfer_time.to_seconds(), 42.65, 1e-9);
}

TEST(Metrics, TwhSplitsAtInterventions) {
    EventLog log;
    log.record_step(step("ot2", 0, 1000));
    log.record_step(step("ot2", 1000, 5000));
    log.record_intervention({TimePoint::from_seconds(1000), "restart pf400 driver"});
    const SdlMetrics m = compute_metrics(log, 2, {});
    EXPECT_EQ(m.interventions, 1);
    // Longest human-free stretch: 1000 -> 5000.
    EXPECT_NEAR(m.time_without_humans.to_seconds(), 4000.0, 1e-9);
    EXPECT_NEAR(m.total_time.to_seconds(), 5000.0, 1e-9);
}

TEST(Metrics, TimePerColorDivision) {
    EventLog log;
    log.record_step(step("ot2", 0, 29520));
    const SdlMetrics m = compute_metrics(log, 128, {});
    // 8 h 12 m / 128 colors = 230.6 s ~ "4 mins".
    EXPECT_NEAR(m.time_per_color.to_minutes(), 3.84, 0.01);
}

TEST(Metrics, ZeroColorsAvoidsDivision) {
    EventLog log;
    log.record_step(step("ot2", 0, 100));
    const SdlMetrics m = compute_metrics(log, 0, {});
    EXPECT_DOUBLE_EQ(m.time_per_color.to_seconds(), 0.0);
}

TEST(Metrics, CustomModuleClassification) {
    EventLog log;
    log.record_step(step("ot2_left", 0, 100));
    log.record_step(step("ot2_right", 100, 250));
    log.record_step(step("pf400", 250, 300));
    MetricsConfig config;
    config.synthesis_modules = {"ot2_left", "ot2_right"};
    config.transfer_modules = {"pf400"};
    const SdlMetrics m = compute_metrics(log, 2, {}, config);
    EXPECT_NEAR(m.synthesis_time.to_seconds(), 250.0, 1e-9);
    EXPECT_NEAR(m.transfer_time.to_seconds(), 50.0, 1e-9);
}

TEST(Metrics, PaperReferenceValues) {
    const SdlMetrics paper = paper_table1_reference();
    EXPECT_EQ(paper.commands_completed, 387u);
    EXPECT_EQ(paper.total_colors, 128);
    EXPECT_NEAR(paper.time_without_humans.to_minutes(), 492.0, 1e-9);
    EXPECT_NEAR(paper.synthesis_time.to_minutes(), 310.0, 1e-9);
    EXPECT_NEAR(paper.transfer_time.to_minutes(), 182.0, 1e-9);
}

TEST(Metrics, TableRendersPaperComparison) {
    EventLog log;
    log.record_step(step("ot2", 0, 18600));
    log.record_step(step("pf400", 18600, 29520));
    const SdlMetrics measured = compute_metrics(log, 128, {});
    const SdlMetrics paper = paper_table1_reference();
    const std::string table = render_metrics_table(measured, &paper);
    EXPECT_NE(table.find("Time without humans"), std::string::npos);
    EXPECT_NE(table.find("Paper (B=1)"), std::string::npos);
    EXPECT_NE(table.find("8 h 12 m"), std::string::npos);
    EXPECT_NE(table.find("387"), std::string::npos);
    EXPECT_NE(table.find("5 h 10 m"), std::string::npos);
}
