// Property-test pass over the procedural scenario layer
// (core/scenario_gen.hpp): a 200-seed sweep pinning validity, bitwise
// YAML round trips, and regeneration determinism; the generated-ref
// grammar's loud negative paths (in the library, experiment YAML, and
// campaign axes); range fan-out on the campaign workcells axis; sampled
// end-to-end runs across all three plate formats; and the difficulty
// probe's determinism.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/campaign_io.hpp"
#include "core/colorpicker.hpp"
#include "core/config_io.hpp"
#include "core/presets.hpp"
#include "core/scenario_gen.hpp"
#include "core/scenarios.hpp"
#include "core/workcell_spec.hpp"
#include "support/common.hpp"
#include "support/log.hpp"

using namespace sdl;
using namespace sdl::core;

namespace {

constexpr std::uint64_t kSweepSeeds = 200;

/// The ConfigError message for `thrower()` — the grammar's contract is
/// that every rejection names the offending token, so tests assert on
/// the message, not just the type.
template <typename Fn>
std::string config_error_of(Fn&& thrower) {
    try {
        thrower();
    } catch (const support::ConfigError& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected support::ConfigError";
    return {};
}

}  // namespace

// ------------------------------------------------------------ ref grammar

TEST(GeneratedRefs, PrefixDetectionSaysNothingAboutWellFormedness) {
    EXPECT_TRUE(is_generated_ref("generated:seed=7"));
    EXPECT_TRUE(is_generated_ref("generated:"));
    EXPECT_TRUE(is_generated_ref("generated:anything"));
    EXPECT_FALSE(is_generated_ref("baseline"));
    EXPECT_FALSE(is_generated_ref("gen_7"));
    EXPECT_FALSE(is_generated_ref("cells/generated.yaml"));
}

TEST(GeneratedRefs, SingleSeedRefsParse) {
    EXPECT_EQ(parse_generated_ref("generated:seed=0"), 0u);
    EXPECT_EQ(parse_generated_ref("generated:seed=7"), 7u);
    EXPECT_EQ(parse_generated_ref("generated:seed=18446744073709551615"),
              18446744073709551615ull);
}

TEST(GeneratedRefs, MalformedRefsFailLoudlyNamingTheToken) {
    // Each rejection must carry the full offending ref so a typo in a
    // campaign grid is findable from the error alone.
    for (const std::string ref :
         {"generated:", "generated:seed=", "generated:seed=abc", "generated:seed=-3",
          "generated:seed=1.5", "generated:sede=7", "generated:seed=7 "}) {
        const std::string what =
            config_error_of([&] { (void)parse_generated_ref(ref); });
        EXPECT_NE(what.find("'" + ref + "'"), std::string::npos) << what;
        const std::string expand_what =
            config_error_of([&] { (void)expand_generated_refs(ref); });
        EXPECT_NE(expand_what.find("'" + ref + "'"), std::string::npos) << expand_what;
    }
    // Ranges are a campaign-axis construct; single-scenario contexts
    // reject them with a pointer at the right spelling.
    const std::string range_what =
        config_error_of([] { (void)parse_generated_ref("generated:seed=1..3"); });
    EXPECT_NE(range_what.find("'generated:seed=1..3'"), std::string::npos);
    EXPECT_NE(range_what.find("workcells axis"), std::string::npos);
}

TEST(GeneratedRefs, RangeExpansionIsInclusiveAndOrdered) {
    EXPECT_EQ(expand_generated_refs("generated:seed=5"),
              (std::vector<std::string>{"generated:seed=5"}));
    EXPECT_EQ(expand_generated_refs("generated:seed=2..4"),
              (std::vector<std::string>{"generated:seed=2", "generated:seed=3",
                                        "generated:seed=4"}));
    EXPECT_EQ(expand_generated_refs("generated:seed=9..9"),
              (std::vector<std::string>{"generated:seed=9"}));
    // Non-generated refs pass through untouched (the axis mixes named
    // scenarios, spec files, and generated refs freely).
    EXPECT_EQ(expand_generated_refs("baseline"),
              (std::vector<std::string>{"baseline"}));
}

TEST(GeneratedRefs, EmptyAndOversizedRangesAreRejected) {
    const std::string empty_what =
        config_error_of([] { (void)expand_generated_refs("generated:seed=1..0"); });
    EXPECT_NE(empty_what.find("'generated:seed=1..0'"), std::string::npos);
    EXPECT_NE(empty_what.find("empty seed range"), std::string::npos);

    const std::string wide_what =
        config_error_of([] { (void)expand_generated_refs("generated:seed=0..4096"); });
    EXPECT_NE(wide_what.find("'generated:seed=0..4096'"), std::string::npos);
    EXPECT_NE(wide_what.find("limit"), std::string::npos);
    // Exactly at the cap is fine.
    EXPECT_EQ(expand_generated_refs("generated:seed=1..4096").size(), 4096u);

    const std::string bad_hi_what =
        config_error_of([] { (void)expand_generated_refs("generated:seed=1..x"); });
    EXPECT_NE(bad_hi_what.find("'generated:seed=1..x'"), std::string::npos);
}

// ------------------------------------------------------ 200-seed sweep

TEST(GeneratedScenarios, SweepIsValidRoundTrippableAndDeterministic) {
    std::set<std::string> plate_formats;
    for (std::uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
        const WorkcellSpec spec = generate_scenario(seed);
        EXPECT_EQ(spec.name, "gen_" + std::to_string(seed));
        EXPECT_NO_THROW(validate_workcell_spec(spec)) << spec.name;

        // The spec survives a YAML round trip bitwise: the workcell.yaml
        // a run saves next to its results reproduces the run exactly.
        const std::string yaml = workcell_spec_to_yaml(spec);
        EXPECT_EQ(workcell_spec_to_yaml(workcell_spec_from_yaml(yaml)), yaml)
            << spec.name;
        // Same seed => same bytes, every time.
        EXPECT_EQ(workcell_spec_to_yaml(generate_scenario(seed)), yaml) << spec.name;

        ASSERT_TRUE(spec.plate_rows.has_value());
        ASSERT_TRUE(spec.plate_cols.has_value());
        plate_formats.insert(std::to_string(*spec.plate_rows) + "x" +
                             std::to_string(*spec.plate_cols));

        // Structural invariants of the family: camera and >=1 OT2 are
        // mandatory, rosters stay within the modeled hardware.
        int ot2s = 0;
        int cameras = 0;
        for (const DeviceSpec& d : spec.devices) {
            if (d.kind == DeviceKind::Ot2) ot2s += d.count;
            if (d.kind == DeviceKind::Camera) cameras += d.count;
        }
        EXPECT_GE(ot2s, 1) << spec.name;
        EXPECT_LE(ot2s, 3) << spec.name;
        EXPECT_EQ(cameras, 1) << spec.name;
        EXPECT_GE(spec.timing_scale, 0.4) << spec.name;
        EXPECT_LE(spec.timing_scale, 1.8) << spec.name;
    }
    // The sweep must exercise all three plate formats; if a distribution
    // tweak starves one, this is the canary.
    EXPECT_EQ(plate_formats,
              (std::set<std::string>{"8x12", "16x24", "32x48"}));
}

TEST(GeneratedScenarios, ResolveScenarioRoutesGeneratedRefs) {
    const WorkcellSpec spec = resolve_scenario("generated:seed=7");
    EXPECT_EQ(spec.name, "gen_7");
    // The registry keeps rejecting unknown *names*, with a hint at the
    // generated grammar.
    const std::string what =
        config_error_of([] { (void)resolve_scenario("warp_core"); });
    EXPECT_NE(what.find("generated:seed="), std::string::npos) << what;
}

// --------------------------------------------------- sampled end-to-end

TEST(GeneratedScenarios, SampledSeedsRunEndToEndAcrossPlateFormats) {
    support::set_log_level(support::LogLevel::Error);
    // One representative per plate format (seeds found by scanning the
    // family: 1 -> 96-well, 3 -> 384, 25 -> 1536). Dense formats scale
    // the camera frames up, so this also covers the vision pipeline's
    // non-96-well geometry.
    struct Sample {
        std::uint64_t seed;
        int rows;
        int cols;
    };
    for (const Sample s : {Sample{1, 8, 12}, Sample{3, 16, 24}, Sample{25, 32, 48}}) {
        ColorPickerConfig config = preset_quickstart();
        config.total_samples = 4;
        config.batch_size = 4;
        config = apply_workcell_spec(std::move(config),
                                    generate_scenario(s.seed));
        ASSERT_EQ(config.plate_rows, s.rows) << s.seed;
        ASSERT_EQ(config.plate_cols, s.cols) << s.seed;
        ColorPickerApp app(std::move(config));
        const ExperimentOutcome outcome = app.run();
        EXPECT_EQ(outcome.samples.size(), 4u) << s.seed;
        EXPECT_LT(outcome.best_score, 1e300) << s.seed;
    }
}

TEST(GeneratedScenarios, DifficultyIsDeterministicPerSeed) {
    support::set_log_level(support::LogLevel::Error);
    const double first = generated_difficulty(1);
    EXPECT_GE(first, 0.0);
    EXPECT_LE(first, kUnrunnableDifficulty);
    // Memoized and stable: the report writer may score the same cell
    // many times while a campaign is resumed or re-merged.
    EXPECT_EQ(generated_difficulty(1), first);
}

// ------------------------------------------------- YAML entry points

TEST(GeneratedScenarios, ExperimentYamlAcceptsSingleSeedRefs) {
    const ColorPickerConfig config = config_from_yaml(
        "workcell:\n"
        "  scenario: generated:seed=7\n"
        "experiment:\n"
        "  total_samples: 8\n");
    EXPECT_EQ(config.workcell.scenario, "gen_7");
    EXPECT_EQ(config.total_samples, 8);
}

TEST(GeneratedScenarios, ExperimentYamlRejectsMalformedAndRangeRefs) {
    const auto config_with_scenario = [](const std::string& ref) {
        return [ref] {
            (void)config_from_yaml("workcell:\n  scenario: " + ref +
                                   "\nexperiment:\n  total_samples: 4\n");
        };
    };
    for (const std::string ref :
         {"generated:", "generated:seed=", "generated:seed=abc"}) {
        const std::string what = config_error_of(config_with_scenario(ref));
        EXPECT_NE(what.find("'" + ref + "'"), std::string::npos) << what;
    }
    // A range in an experiment file points at the campaign axis.
    const std::string range_what =
        config_error_of(config_with_scenario("generated:seed=1..3"));
    EXPECT_NE(range_what.find("workcells axis"), std::string::npos) << range_what;
}

TEST(GeneratedCampaigns, WorkcellsAxisFansOutSeedRanges) {
    const campaign::CampaignSpec spec = campaign::campaign_from_yaml(
        "campaign:\n"
        "  name: gen_fan\n"
        "grid:\n"
        "  workcells: [baseline, generated:seed=2..4]\n"
        "experiment:\n"
        "  total_samples: 4\n"
        "  batch_size: 2\n");
    EXPECT_EQ(spec.axes.workcells,
              (std::vector<std::string>{"baseline", "generated:seed=2",
                                        "generated:seed=3", "generated:seed=4"}));
    const std::vector<campaign::CampaignCell> cells = campaign::expand_grid(spec);
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_FALSE(cells[0].generated_seed.has_value());
    for (std::size_t i = 1; i < cells.size(); ++i) {
        ASSERT_TRUE(cells[i].generated_seed.has_value()) << i;
        EXPECT_EQ(*cells[i].generated_seed, i + 1);
        EXPECT_EQ(cells[i].workcell, "gen_" + std::to_string(i + 1));
        // Generated workcells appear in experiment ids like any other
        // swept scenario.
        EXPECT_NE(cells[i].config.experiment_id.find("gen_" + std::to_string(i + 1)),
                  std::string::npos);
    }
}

TEST(GeneratedCampaigns, MalformedAxisRefsFailLoudlyNamingTheToken) {
    const auto campaign_with_axis = [](const std::string& axis) {
        return [axis] {
            (void)campaign::campaign_from_yaml("campaign:\n  name: bad\ngrid:\n"
                                               "  workcells: [" +
                                               axis +
                                               "]\nexperiment:\n"
                                               "  total_samples: 4\n");
        };
    };
    for (const std::string ref :
         {"generated:", "generated:seed=", "generated:seed=1..0"}) {
        const std::string what = config_error_of(campaign_with_axis(ref));
        EXPECT_NE(what.find("'" + ref + "'"), std::string::npos) << what;
    }
}

TEST(GeneratedCampaigns, OverlappingRangesCollideInExperimentIds) {
    // Overlap fans out to duplicate refs; expand_grid's axis-uniqueness
    // check names the duplicated entry.
    campaign::CampaignSpec spec;
    spec.base.total_samples = 4;
    spec.base.batch_size = 2;
    spec.axes.workcells.clear();
    for (const std::string axis : {"generated:seed=1..3", "generated:seed=2..4"}) {
        for (const std::string& ref : expand_generated_refs(axis)) {
            spec.axes.workcells.push_back(ref);
        }
    }
    const std::string what =
        config_error_of([&] { (void)campaign::expand_grid(spec); });
    EXPECT_NE(what.find("'generated:seed=2'"), std::string::npos) << what;
    EXPECT_NE(what.find("listed twice"), std::string::npos) << what;
}
