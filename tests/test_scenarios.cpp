// Tests for the WorkcellSpec subsystem: spec YAML round trips, loud
// validation errors (unknown devices, duplicate names), the scenario
// registry, spec application to experiment configs, runtime construction
// for non-baseline topologies, and the determinism guarantee for
// scenario-sweeping campaigns (same spec + seed => byte-identical JSON).
#include <gtest/gtest.h>

#include <fstream>

#include "campaign/campaign.hpp"
#include "campaign/campaign_io.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "core/colorpicker.hpp"
#include "core/config_io.hpp"
#include "core/presets.hpp"
#include "core/scenarios.hpp"
#include "core/workcell_spec.hpp"
#include "support/common.hpp"
#include "support/log.hpp"

using namespace sdl;
using namespace sdl::core;

// ------------------------------------------------------------ spec YAML

TEST(WorkcellSpec, ParsesFullDocument) {
    const char* text = R"(workcell:
  name: custom
  description: a test cell
  timing_scale: 0.5
  manual_handling_s: 12.5
plate:
  rows: 4
  cols: 6
devices:
  - kind: sciclops
    towers: 2
  - kind: pf400
    transfer_s: 30.0
  - kind: ot2
    count: 2
    per_well_s: 20.0
  - kind: camera
    glitch_prob: 0.1
faults:
  command_rejection_prob: 0.02
  rejection_latency_s: 7.5
  per_module: {ot2: 0.05}
)";
    const WorkcellSpec spec = workcell_spec_from_yaml(text);
    EXPECT_EQ(spec.name, "custom");
    EXPECT_EQ(spec.description, "a test cell");
    EXPECT_DOUBLE_EQ(spec.timing_scale, 0.5);
    EXPECT_DOUBLE_EQ(spec.manual_handling.to_seconds(), 12.5);
    EXPECT_EQ(spec.plate_rows, 4);
    EXPECT_EQ(spec.plate_cols, 6);
    ASSERT_EQ(spec.devices.size(), 4u);
    EXPECT_EQ(spec.devices[0].kind, DeviceKind::Sciclops);
    EXPECT_EQ(spec.devices[2].count, 2);
    ASSERT_TRUE(spec.faults.has_value());
    EXPECT_DOUBLE_EQ(spec.faults->command_rejection_prob, 0.02);
    EXPECT_DOUBLE_EQ(spec.faults->rejection_latency.to_seconds(), 7.5);
    EXPECT_DOUBLE_EQ(spec.faults->per_module.at("ot2"), 0.05);
}

TEST(WorkcellSpec, RoundTripsThroughYaml) {
    WorkcellSpec original = scenario_by_name("degraded");
    const WorkcellSpec back = workcell_spec_from_yaml(workcell_spec_to_yaml(original));
    EXPECT_EQ(back.name, original.name);
    EXPECT_EQ(back.description, original.description);
    EXPECT_DOUBLE_EQ(back.timing_scale, original.timing_scale);
    EXPECT_EQ(back.devices.size(), original.devices.size());
    for (std::size_t i = 0; i < back.devices.size(); ++i) {
        EXPECT_EQ(back.devices[i].kind, original.devices[i].kind);
        EXPECT_EQ(back.devices[i].name, original.devices[i].name);
        EXPECT_EQ(back.devices[i].count, original.devices[i].count);
        EXPECT_EQ(back.devices[i].options, original.devices[i].options);
    }
    ASSERT_TRUE(back.faults.has_value());
    EXPECT_DOUBLE_EQ(back.faults->command_rejection_prob,
                     original.faults->command_rejection_prob);
    EXPECT_EQ(back.faults->per_module, original.faults->per_module);
    // Every registry scenario round-trips to an equivalent applied config.
    for (const std::string& name : scenario_names()) {
        const WorkcellSpec spec = scenario_by_name(name);
        const WorkcellSpec reparsed =
            workcell_spec_from_yaml(workcell_spec_to_yaml(spec));
        const ColorPickerConfig a = apply_workcell_spec(ColorPickerConfig{}, spec);
        const ColorPickerConfig b = apply_workcell_spec(ColorPickerConfig{}, reparsed);
        EXPECT_EQ(config_to_yaml(a), config_to_yaml(b)) << name;
        EXPECT_EQ(a.workcell.ot2_count, b.workcell.ot2_count) << name;
    }
}

TEST(WorkcellSpec, UnknownDevicesAndKeysFailLoudly) {
    // Unknown device kind.
    EXPECT_THROW((void)workcell_spec_from_yaml("workcell:\n  name: x\ndevices:\n"
                                               "  - kind: teleporter\n"),
                 support::ConfigError);
    // Unknown option for a known kind.
    EXPECT_THROW((void)workcell_spec_from_yaml("workcell:\n  name: x\ndevices:\n"
                                               "  - kind: ot2\n    warp_factor: 9\n"),
                 support::ConfigError);
    // Unknown top-level / header keys.
    EXPECT_THROW((void)workcell_spec_from_yaml("workcell:\n  nmae: typo\ndevices:\n"
                                               "  - kind: ot2\n  - kind: camera\n"),
                 support::ConfigError);
    EXPECT_THROW((void)workcell_spec_from_yaml("workcell:\n  name: x\ntransport: des\n"
                                               "devices:\n  - kind: ot2\n"),
                 support::ConfigError);
    // Missing the marker section, the roster, or the spec's identity.
    EXPECT_THROW((void)workcell_spec_from_yaml("devices:\n  - kind: ot2\n"),
                 support::ConfigError);
    EXPECT_THROW((void)workcell_spec_from_yaml("workcell:\n  name: x\n"),
                 support::ConfigError);
    EXPECT_THROW((void)workcell_spec_from_yaml("workcell:\n  description: anon\n"
                                               "devices:\n  - kind: ot2\n"
                                               "  - kind: camera\n"),
                 support::ConfigError);
}

TEST(WorkcellSpec, ValidationRejectsBadRosters) {
    const auto spec_with = [](auto mutate) {
        WorkcellSpec spec = scenario_by_name("baseline");
        mutate(spec);
        return spec;
    };
    // Duplicate instance names (explicit duplicate and count collision).
    EXPECT_THROW(validate_workcell_spec(spec_with([](WorkcellSpec& s) {
                     s.devices.push_back(s.devices.back());
                 })),
                 support::ConfigError);
    // Camera and ot2 are mandatory.
    EXPECT_THROW(validate_workcell_spec(spec_with([](WorkcellSpec& s) {
                     s.devices.pop_back();  // camera is last in the roster
                 })),
                 support::ConfigError);
    EXPECT_THROW(validate_workcell_spec(spec_with([](WorkcellSpec& s) {
                     std::erase_if(s.devices, [](const DeviceSpec& d) {
                         return d.kind == DeviceKind::Ot2;
                     });
                 })),
                 support::ConfigError);
    // Only ot2 may fan out.
    EXPECT_THROW(validate_workcell_spec(spec_with([](WorkcellSpec& s) {
                     s.devices.front().count = 2;  // sciclops
                 })),
                 support::ConfigError);
    // Bad scalars.
    EXPECT_THROW(validate_workcell_spec(spec_with([](WorkcellSpec& s) {
                     s.timing_scale = 0.0;
                 })),
                 support::ConfigError);
    EXPECT_THROW(validate_workcell_spec(spec_with([](WorkcellSpec& s) {
                     wei::FaultConfig f;
                     f.command_rejection_prob = 1.5;
                     s.faults = f;
                 })),
                 support::ConfigError);
    // Out-of-range device options fail at validation, not mid-simulation.
    EXPECT_THROW((void)workcell_spec_from_yaml("workcell:\n  name: x\ndevices:\n"
                                               "  - kind: pf400\n    transfer_s: -5\n"
                                               "  - kind: ot2\n  - kind: camera\n"),
                 support::ConfigError);
    EXPECT_THROW((void)workcell_spec_from_yaml("workcell:\n  name: x\ndevices:\n"
                                               "  - kind: ot2\n  - kind: camera\n"
                                               "    max_frames: 0\n"),
                 support::ConfigError);
    EXPECT_THROW((void)workcell_spec_from_yaml(
                     "workcell:\n  name: x\ndevices:\n"
                     "  - kind: ot2\n    reservoir_capacity_ml: -1\n  - kind: camera\n"),
                 support::ConfigError);
    // Custom instance names would strand the module (workflows address
    // modules by kind name), so they are rejected loudly.
    EXPECT_THROW((void)workcell_spec_from_yaml("workcell:\n  name: x\ndevices:\n"
                                               "  - kind: ot2\n    name: mixer_b\n"
                                               "  - kind: camera\n"),
                 support::ConfigError);
}

// ------------------------------------------------------------- registry

TEST(Scenarios, RegistryShipsTheDocumentedPack) {
    const std::vector<std::string> expected{"baseline", "multi_ot2", "degraded",
                                           "fast_lane", "minimal"};
    EXPECT_EQ(scenario_names(), expected);
    for (const std::string& name : expected) {
        EXPECT_TRUE(is_scenario_name(name));
        const WorkcellSpec spec = scenario_by_name(name);
        EXPECT_EQ(spec.name, name);
        EXPECT_FALSE(spec.description.empty());
        EXPECT_NO_THROW(validate_workcell_spec(spec));
    }
    EXPECT_FALSE(is_scenario_name("warp_core"));
    EXPECT_THROW((void)scenario_by_name("warp_core"), support::ConfigError);
}

TEST(Scenarios, ResolveAcceptsNamesAndFiles) {
    const WorkcellSpec named = resolve_scenario("fast_lane");
    EXPECT_DOUBLE_EQ(named.timing_scale, 0.25);

    const std::string path = ::testing::TempDir() + "/sdl_cell.yaml";
    {
        std::ofstream file(path);
        file << workcell_spec_to_yaml(scenario_by_name("minimal"));
    }
    const WorkcellSpec from_file = resolve_scenario(path);
    EXPECT_EQ(from_file.name, "minimal");
    EXPECT_THROW((void)resolve_scenario("/nonexistent/cell.yaml"), support::Error);
}

TEST(Scenarios, FileReferencesResolveRelativeToTheReferencingFile) {
    // A campaign in one directory referencing a spec file by a relative
    // path must load no matter where the process runs from.
    const std::string dir = ::testing::TempDir();
    {
        std::ofstream spec_file(dir + "/sdl_rel_cell.yaml");
        WorkcellSpec cell = scenario_by_name("fast_lane");
        cell.name = "rel_cell";
        spec_file << workcell_spec_to_yaml(cell);
    }
    {
        std::ofstream campaign_file(dir + "/sdl_rel_campaign.yaml");
        campaign_file << "campaign:\n  name: rel\ngrid:\n"
                         "  workcells: [baseline, sdl_rel_cell.yaml]\n"
                         "experiment:\n  total_samples: 4\n  batch_size: 2\n";
    }
    const campaign::CampaignSpec spec =
        campaign::campaign_from_file(dir + "/sdl_rel_campaign.yaml");
    const auto cells = campaign::expand_grid(spec);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[1].workcell, "rel_cell");
    EXPECT_DOUBLE_EQ(cells[1].config.pf400.timing.transfer.to_seconds(), 42.65 * 0.25);

    // Same for an experiment file's workcell.scenario key.
    {
        std::ofstream exp_file(dir + "/sdl_rel_exp.yaml");
        exp_file << "workcell:\n  scenario: sdl_rel_cell.yaml\n"
                    "experiment:\n  total_samples: 4\n";
    }
    const ColorPickerConfig config = config_from_file(dir + "/sdl_rel_exp.yaml");
    EXPECT_EQ(config.workcell.scenario, "rel_cell");

    // And for a campaign file's *base* workcell section, which resolves
    // its scenario while the base config parses.
    {
        std::ofstream campaign_file(dir + "/sdl_rel_campaign2.yaml");
        campaign_file << "campaign:\n  name: rel2\n"
                         "workcell:\n  scenario: sdl_rel_cell.yaml\n"
                         "experiment:\n  total_samples: 4\n  batch_size: 2\n";
    }
    const campaign::CampaignSpec base_spec =
        campaign::campaign_from_file(dir + "/sdl_rel_campaign2.yaml");
    EXPECT_EQ(base_spec.base.workcell.scenario, "rel_cell");
}

TEST(Scenarios, CollidingWorkcellAxisEntriesAreRejected) {
    const std::string path = ::testing::TempDir() + "/sdl_degraded_copy.yaml";
    {
        std::ofstream file(path);
        file << workcell_spec_to_yaml(scenario_by_name("degraded"));
    }
    campaign::CampaignSpec spec;
    spec.base.total_samples = 4;
    spec.base.batch_size = 2;
    // A registry name and a file that resolves to the same scenario name
    // would produce duplicate experiment ids.
    spec.axes.workcells = {"degraded", path};
    EXPECT_THROW((void)campaign::expand_grid(spec), support::ConfigError);
    spec.axes.workcells = {"degraded", "degraded"};
    EXPECT_THROW((void)campaign::expand_grid(spec), support::ConfigError);
}

// ----------------------------------------------------------- application

TEST(Scenarios, ApplyResolvesTopologyTimingsAndFaults) {
    const ColorPickerConfig base = preset_quickstart();

    const ColorPickerConfig multi =
        apply_workcell_spec(base, scenario_by_name("multi_ot2"));
    EXPECT_EQ(multi.workcell.scenario, "multi_ot2");
    EXPECT_EQ(multi.workcell.ot2_count, 3);
    EXPECT_TRUE(multi.workcell.has_sciclops);

    const ColorPickerConfig fast =
        apply_workcell_spec(base, scenario_by_name("fast_lane"));
    EXPECT_DOUBLE_EQ(fast.pf400.timing.transfer.to_seconds(), 42.65 * 0.25);
    EXPECT_DOUBLE_EQ(fast.ot2.timing.per_well.to_seconds(), 35.0 * 0.25);

    const ColorPickerConfig degraded =
        apply_workcell_spec(base, scenario_by_name("degraded"));
    EXPECT_DOUBLE_EQ(degraded.faults.command_rejection_prob, 0.03);
    EXPECT_DOUBLE_EQ(degraded.faults.per_module.at("ot2"), 0.08);
    EXPECT_DOUBLE_EQ(degraded.camera.glitch_prob, 0.05);

    const ColorPickerConfig minimal =
        apply_workcell_spec(base, scenario_by_name("minimal"));
    EXPECT_FALSE(minimal.workcell.has_sciclops);
    EXPECT_FALSE(minimal.workcell.has_pf400);
    EXPECT_FALSE(minimal.workcell.has_barty);
    // Applying a spec is idempotent (hardware starts from defaults).
    const ColorPickerConfig twice =
        apply_workcell_spec(fast, scenario_by_name("fast_lane"));
    EXPECT_DOUBLE_EQ(twice.pf400.timing.transfer.to_seconds(),
                     fast.pf400.timing.transfer.to_seconds());
    // The experiment knobs are untouched.
    EXPECT_EQ(minimal.total_samples, base.total_samples);
    EXPECT_EQ(minimal.solver, base.solver);
}

TEST(Scenarios, ExperimentYamlCanNameAScenario) {
    const ColorPickerConfig config = config_from_yaml(
        "workcell:\n"
        "  scenario: minimal\n"
        "  manual_handling_s: 33.0\n"
        "experiment:\n"
        "  total_samples: 8\n");
    EXPECT_EQ(config.workcell.scenario, "minimal");
    EXPECT_FALSE(config.workcell.has_pf400);
    EXPECT_DOUBLE_EQ(config.workcell.manual_handling.to_seconds(), 33.0);
    EXPECT_EQ(config.total_samples, 8);
    EXPECT_THROW((void)config_from_yaml("workcell:\n  scenario: warp_core\n"),
                 support::ConfigError);
    // Topology round-trips through the experiment document.
    const ColorPickerConfig back = config_from_yaml(config_to_yaml(config));
    EXPECT_EQ(back.workcell.scenario, "minimal");
    EXPECT_FALSE(back.workcell.has_barty);
    EXPECT_DOUBLE_EQ(back.workcell.manual_handling.to_seconds(), 33.0);
}

// ------------------------------------------------- runtime & experiments

TEST(Scenarios, RuntimeMountsTheDescribedTopology) {
    ColorPickerConfig config = preset_quickstart();
    config = apply_workcell_spec(config, scenario_by_name("multi_ot2"));
    WorkcellRuntime runtime(config);
    EXPECT_EQ(runtime.ot2s().size(), 3u);
    EXPECT_TRUE(runtime.registry().contains("ot2"));
    EXPECT_TRUE(runtime.registry().contains("ot2_2"));
    EXPECT_TRUE(runtime.registry().contains("ot2_3"));
    EXPECT_TRUE(runtime.locations().has_location("ot2_2.deck"));
    // Distinct noise streams per instance.
    EXPECT_EQ(runtime.registry().get("ot2_2").info().name, "ot2_2");

    ColorPickerConfig minimal_config =
        apply_workcell_spec(preset_quickstart(), scenario_by_name("minimal"));
    WorkcellRuntime minimal(minimal_config);
    EXPECT_FALSE(minimal.has_sciclops());
    EXPECT_FALSE(minimal.has_pf400());
    EXPECT_FALSE(minimal.has_barty());
    EXPECT_THROW((void)minimal.sciclops(), support::LogicError);
    // The stand-ins answer under the absent devices' names, not robotic.
    EXPECT_TRUE(minimal.registry().contains("pf400"));
    EXPECT_EQ(minimal.registry().get("pf400").info().model, "Human operator");
    EXPECT_FALSE(minimal.registry().get("pf400").info().robotic);
}

TEST(Scenarios, ExperimentsRunOnEveryShippedScenario) {
    support::set_log_level(support::LogLevel::Error);
    for (const std::string& name : scenario_names()) {
        ColorPickerConfig config = preset_quickstart();
        config.total_samples = 8;
        config.batch_size = 4;
        config = apply_workcell_spec(config, scenario_by_name(name));
        ColorPickerApp app(config);
        const ExperimentOutcome outcome = app.run();
        EXPECT_EQ(outcome.samples.size(), 8u) << name;
        EXPECT_LT(outcome.best_score, 1e300) << name;
    }
}

TEST(Scenarios, VisionRoiFastPathByteIdenticalAcrossScenarioPack) {
    // The marker-ROI reader and the camera base-raster cache must be
    // invisible in the results: for every shipped scenario, a run with
    // the fast paths on serializes to the exact bytes of a run with them
    // off (same seed, same workcell).
    support::set_log_level(support::LogLevel::Error);
    for (const std::string& name : scenario_names()) {
        const auto run_with = [&](bool fast) {
            ColorPickerConfig config = preset_quickstart();
            config.total_samples = 12;
            config.batch_size = 4;
            config = apply_workcell_spec(config, scenario_by_name(name));
            config.vision_roi_fast_path = fast;
            config.camera.cache_base_raster = fast;
            ColorPickerApp app(config);
            const ExperimentOutcome outcome = app.run();
            return campaign::experiment_result_to_json(app.config(), outcome).pretty();
        };
        EXPECT_EQ(run_with(true), run_with(false)) << name;
    }
}

TEST(Scenarios, ManualStandInsAreExcludedFromCcwh) {
    support::set_log_level(support::LogLevel::Error);
    const auto run_on = [](const char* scenario) {
        ColorPickerConfig config = preset_quickstart();
        config.total_samples = 8;
        config.batch_size = 4;
        config = apply_workcell_spec(config, scenario_by_name(scenario));
        ColorPickerApp app(config);
        return app.run();
    };
    const ExperimentOutcome baseline = run_on("baseline");
    const ExperimentOutcome minimal = run_on("minimal");
    // Same loop, same sample count — but the minimal cell's handling
    // commands are human actions, so CCWH drops.
    EXPECT_EQ(baseline.samples.size(), minimal.samples.size());
    EXPECT_LT(minimal.metrics.commands_completed, baseline.metrics.commands_completed);
}

// ---------------------------------------------------------- determinism

TEST(Scenarios, ScenarioCampaignIsByteIdenticalAcrossRuns) {
    support::set_log_level(support::LogLevel::Error);
    campaign::CampaignSpec spec;
    spec.name = "scenario_det";
    spec.base.total_samples = 6;
    spec.base.batch_size = 3;
    spec.base_seed = 21;
    spec.axes.workcells = {"baseline", "degraded", "minimal"};
    spec.axes.solvers = {"random"};

    campaign::CampaignRunnerOptions options;
    options.log_progress = false;
    const campaign::CampaignRunner runner(options);
    const auto first = runner.run(spec);
    const auto second = runner.run(spec);
    ASSERT_EQ(first.size(), 3u);
    const std::string json_a =
        campaign::campaign_results_to_json(spec, first).pretty();
    const std::string json_b =
        campaign::campaign_results_to_json(spec, second).pretty();
    EXPECT_EQ(json_a, json_b);
    // Each cell's result document records its scenario.
    const auto doc = support::json::parse(json_a);
    const auto& cells = doc.at("cells").as_array();
    EXPECT_EQ(cells[0].at("result").at("workcell").as_string(), "baseline");
    EXPECT_EQ(cells[1].at("result").at("workcell").as_string(), "degraded");
    EXPECT_EQ(cells[2].at("result").at("workcell").as_string(), "minimal");
}
