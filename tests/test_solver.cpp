// Tests for the optimization solvers: the paper's genetic algorithm, the
// Gaussian-process Bayesian solver, and the baselines — including
// closed-loop convergence on the simulated color-mixing objective.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <thread>

#include "color/mixing.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "solver/anneal.hpp"
#include "solver/baselines.hpp"
#include "solver/bayes.hpp"
#include "solver/factory.hpp"
#include "solver/genetic.hpp"
#include "solver/pattern.hpp"
#include "support/common.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

using namespace sdl::solver;
using sdl::color::BeerLambertMixer;
using sdl::color::DyeLibrary;
using sdl::color::Rgb8;
using sdl::support::Rng;

namespace {

constexpr Rgb8 kTarget{120, 120, 120};

/// Simulated objective: mix the ratios, add camera-like measurement
/// noise, return the RGB Euclidean distance to the target.
class NoisyObjective {
public:
    explicit NoisyObjective(std::uint64_t seed, double noise_sigma = 2.0)
        : mixer_(DyeLibrary::cmyk()), rng_(seed), noise_sigma_(noise_sigma) {}

    Observation evaluate(const std::vector<double>& ratios) {
        const Rgb8 truth = mixer_.mix_ratios(ratios);
        auto jitter = [&](std::uint8_t v) {
            const long q = std::lround(v + rng_.normal(0.0, noise_sigma_));
            return static_cast<std::uint8_t>(q < 0 ? 0 : (q > 255 ? 255 : q));
        };
        Observation obs;
        obs.ratios = ratios;
        obs.measured = {jitter(truth.r), jitter(truth.g), jitter(truth.b)};
        obs.score = sdl::color::rgb_distance(obs.measured, kTarget);
        return obs;
    }

    const BeerLambertMixer& mixer() const { return mixer_; }

private:
    BeerLambertMixer mixer_;
    Rng rng_;
    double noise_sigma_;
};

/// Runs a solver for `budget` samples in batches of `batch`, returning
/// the best score seen.
double run_loop(Solver& solver, NoisyObjective& objective, std::size_t budget,
                std::size_t batch) {
    double best = 1e300;
    std::size_t done = 0;
    while (done < budget) {
        const std::size_t n = std::min(batch, budget - done);
        const auto proposals = solver.ask(n);
        std::vector<Observation> observations;
        observations.reserve(proposals.size());
        for (const auto& p : proposals) {
            observations.push_back(objective.evaluate(p));
            best = std::min(best, observations.back().score);
        }
        solver.tell(observations);
        done += n;
    }
    return best;
}

}  // namespace

// -------------------------------------------------------------- interface

TEST(SolverBase, TracksBestAcrossTells) {
    GeneticSolver solver;
    EXPECT_FALSE(solver.best().has_value());
    Observation a{{0.5, 0.5, 0.5, 0.5}, {100, 100, 100}, 30.0};
    Observation b{{0.2, 0.2, 0.2, 0.2}, {118, 121, 119}, 3.0};
    Observation c{{0.9, 0.1, 0.1, 0.1}, {60, 150, 180}, 80.0};
    solver.tell(std::vector<Observation>{a});
    EXPECT_DOUBLE_EQ(solver.best()->score, 30.0);
    solver.tell(std::vector<Observation>{b, c});
    EXPECT_DOUBLE_EQ(solver.best()->score, 3.0);
}

TEST(SolverBase, ProposalValidation) {
    EXPECT_TRUE(is_valid_proposal(std::vector<double>{0.1, 0.2, 0.3, 0.4}, 4));
    EXPECT_FALSE(is_valid_proposal(std::vector<double>{0.1, 0.2, 0.3}, 4));
    EXPECT_FALSE(is_valid_proposal(std::vector<double>{-0.1, 0.2, 0.3, 0.4}, 4));
    EXPECT_FALSE(is_valid_proposal(std::vector<double>{0.0, 0.0, 0.0, 0.0}, 4));
    EXPECT_FALSE(is_valid_proposal(std::vector<double>{1.2, 0.0, 0.0, 0.0}, 4));
}

// ---------------------------------------------------------------- genetic

TEST(Genetic, InitialPopulationComesFromUniformGrid) {
    GeneticConfig config;
    config.grid_levels = 5;
    GeneticSolver solver(config);
    const auto proposals = solver.ask(16);
    ASSERT_EQ(proposals.size(), 16u);
    for (const auto& p : proposals) {
        ASSERT_EQ(p.size(), 4u);
        for (const double r : p) {
            // Grid values are multiples of 1/(levels-1) = 0.25.
            const double scaled = r * 4.0;
            EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
        }
        EXPECT_TRUE(is_valid_proposal(p, 4));
    }
}

TEST(Genetic, ElitePropagatedIntoNextGeneration) {
    GeneticSolver solver;
    auto initial = solver.ask(9);
    std::vector<Observation> observations;
    for (std::size_t i = 0; i < initial.size(); ++i) {
        observations.push_back({initial[i], {0, 0, 0}, 50.0 - static_cast<double>(i)});
    }
    solver.tell(observations);
    const auto next = solver.ask(9);
    // Slot 0 must be the best (lowest score) element of the previous
    // generation: the last one told.
    EXPECT_EQ(next[0], initial.back());
}

TEST(Genetic, ProposalsStayValidAcrossGenerations) {
    GeneticSolver solver;
    NoisyObjective objective(5);
    for (int gen = 0; gen < 12; ++gen) {
        const auto proposals = solver.ask(9);
        std::vector<Observation> observations;
        for (const auto& p : proposals) {
            ASSERT_TRUE(is_valid_proposal(p, 4)) << "generation " << gen;
            observations.push_back(objective.evaluate(p));
        }
        solver.tell(observations);
    }
}

TEST(Genetic, DeterministicForEqualSeeds) {
    GeneticConfig config;
    config.seed = 77;
    GeneticSolver a(config), b(config);
    NoisyObjective obj_a(9), obj_b(9);
    for (int gen = 0; gen < 5; ++gen) {
        const auto pa = a.ask(6);
        const auto pb = b.ask(6);
        ASSERT_EQ(pa, pb) << "generation " << gen;
        std::vector<Observation> oa, ob;
        for (const auto& p : pa) oa.push_back(obj_a.evaluate(p));
        for (const auto& p : pb) ob.push_back(obj_b.evaluate(p));
        a.tell(oa);
        b.tell(ob);
    }
}

TEST(Genetic, ConvergesOnColorMatchingObjective) {
    // Mirrors the paper's B=8 setting at N=128: final best distance must
    // land in Figure 4's end range (roughly <= 15) for typical seeds.
    sdl::support::OnlineStats finals;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        GeneticConfig config;
        config.seed = seed;
        GeneticSolver solver(config);
        NoisyObjective objective(seed * 13);
        finals.add(run_loop(solver, objective, 128, 8));
    }
    EXPECT_LT(finals.mean(), 15.0);
    EXPECT_LT(finals.max(), 25.0);
}

TEST(Genetic, BatchSizeOneStillImproves) {
    GeneticConfig config;
    config.seed = 3;
    GeneticSolver solver(config);
    NoisyObjective objective(31);
    const double best = run_loop(solver, objective, 128, 1);
    EXPECT_LT(best, 15.0);
}

TEST(Genetic, BeatsRandomSearchOnAverage) {
    sdl::support::OnlineStats genetic_scores, random_scores;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        GeneticConfig config;
        config.seed = seed;
        GeneticSolver genetic(config);
        NoisyObjective obj_a(seed * 101);
        genetic_scores.add(run_loop(genetic, obj_a, 96, 8));

        RandomSolver random_solver(4, seed);
        NoisyObjective obj_b(seed * 101);
        random_scores.add(run_loop(random_solver, obj_b, 96, 8));
    }
    EXPECT_LT(genetic_scores.mean(), random_scores.mean());
}

// -------------------------------------------------------------------- gp

TEST(GaussianProcess, InterpolatesTrainingPoints) {
    GaussianProcess gp;
    std::vector<std::vector<double>> xs{{0.1, 0.1, 0.1, 0.1},
                                        {0.5, 0.5, 0.5, 0.5},
                                        {0.9, 0.2, 0.4, 0.7}};
    std::vector<double> ys{10.0, 3.0, 25.0};
    gp.fit(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto pred = gp.predict(xs[i]);
        EXPECT_NEAR(pred.mean, ys[i], 2.5) << "point " << i;
    }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
    GaussianProcess gp;
    std::vector<std::vector<double>> xs{{0.5, 0.5, 0.5, 0.5}};
    std::vector<double> ys{1.0};
    gp.fit(xs, ys, /*optimize=*/false);
    const auto near = gp.predict(std::vector<double>{0.5, 0.5, 0.5, 0.52});
    const auto far = gp.predict(std::vector<double>{0.95, 0.05, 0.95, 0.05});
    EXPECT_LT(near.variance, far.variance);
}

TEST(GaussianProcess, LmlPrefersSensibleLengthscale) {
    // Data generated from a smooth function: a mid lengthscale must score
    // at least as well as a pathologically tiny one.
    Rng rng(17);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 40; ++i) {
        std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
        ys.push_back(std::sin(3.0 * x[0]) + x[1] * x[1]);
        xs.push_back(std::move(x));
    }
    GaussianProcess gp;
    gp.fit(xs, ys, /*optimize=*/false);
    const double lml_mid = gp.log_marginal_likelihood({0.5, 1e-2, 1.0});
    const double lml_tiny = gp.log_marginal_likelihood({0.01, 1e-2, 1.0});
    EXPECT_GT(lml_mid, lml_tiny);
}

namespace {

double rbf(const std::vector<double>& a, const std::vector<double>& b,
           const GaussianProcess::Hyperparams& p) {
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) d2 += (a[i] - b[i]) * (a[i] - b[i]);
    return p.signal_var * std::exp(-0.5 * d2 / (p.lengthscale * p.lengthscale));
}

}  // namespace

TEST(GaussianProcess, ObserveMatchesBatchRefitAtFrozenStandardization) {
    // The incremental rank-1 update must reproduce the posterior of a
    // from-scratch fit on the full data at the same hyperparameters and
    // the same (frozen) target standardization. The reference posterior
    // is computed by hand with linalg.
    Rng rng(99);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 12; ++i) {
        std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
        ys.push_back(std::sin(3.0 * x[0]) + x[1]);
        xs.push_back(std::move(x));
    }
    constexpr std::size_t kBase = 8;

    GaussianProcess gp;
    gp.fit({xs.begin(), xs.begin() + kBase}, {ys.begin(), ys.begin() + kBase},
           /*optimize=*/false);
    const GaussianProcess::Hyperparams p = gp.hyperparams();
    for (std::size_t i = kBase; i < xs.size(); ++i) gp.observe(xs[i], ys[i]);
    ASSERT_EQ(gp.size(), xs.size());

    // Standardization frozen at the first kBase targets, as documented.
    double mean = 0.0;
    for (std::size_t i = 0; i < kBase; ++i) mean += ys[i];
    mean /= static_cast<double>(kBase);
    double var = 0.0;
    for (std::size_t i = 0; i < kBase; ++i) var += (ys[i] - mean) * (ys[i] - mean);
    var /= static_cast<double>(kBase);
    const double scale = std::sqrt(var);

    const std::size_t n = xs.size();
    sdl::linalg::Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) k(i, j) = rbf(xs[i], xs[j], p);
        k(i, i) += p.noise_var;
    }
    sdl::linalg::Vec ys_std(n);
    for (std::size_t i = 0; i < n; ++i) ys_std[i] = (ys[i] - mean) / scale;
    const sdl::linalg::Cholesky chol(k);
    const sdl::linalg::Vec alpha = chol.solve(ys_std);

    const std::vector<double> query{0.3, 0.7, 0.2, 0.6};
    sdl::linalg::Vec kx(n);
    for (std::size_t i = 0; i < n; ++i) kx[i] = rbf(xs[i], query, p);
    const double mean_std = sdl::linalg::dot(kx, alpha);
    const sdl::linalg::Vec v = chol.solve_lower(kx);
    const double var_std = p.signal_var + p.noise_var - sdl::linalg::dot(v, v);

    const auto pred = gp.predict(query);
    EXPECT_NEAR(pred.mean, mean_std * scale + mean, 1e-9);
    EXPECT_NEAR(pred.variance, var_std * scale * scale, 1e-9);
}

TEST(GaussianProcess, ObserveRequiresFitAndMatchingDims) {
    GaussianProcess gp;
    EXPECT_THROW(gp.observe({0.1, 0.2, 0.3, 0.4}, 1.0), sdl::support::LogicError);
    gp.fit({{0.1, 0.2, 0.3, 0.4}}, {1.0}, /*optimize=*/false);
    EXPECT_THROW(gp.observe({0.1, 0.2}, 1.0), sdl::support::LogicError);
    EXPECT_NO_THROW(gp.observe({0.5, 0.5, 0.5, 0.5}, 2.0));
    EXPECT_EQ(gp.size(), 2u);
}

TEST(GaussianProcess, ObserveSurvivesDuplicatePoints) {
    // An exact duplicate stresses the rank-1 extension (near-singular
    // Schur complement with small noise); the GP must stay usable via
    // the jittered-refit fallback if the extension fails.
    GaussianProcess gp;
    gp.fit({{0.2, 0.2, 0.2, 0.2}, {0.8, 0.8, 0.8, 0.8}}, {1.0, -1.0},
           /*optimize=*/false);
    for (int i = 0; i < 4; ++i) gp.observe({0.2, 0.2, 0.2, 0.2}, 1.0);
    EXPECT_EQ(gp.size(), 6u);
    const auto pred = gp.predict(std::vector<double>{0.2, 0.2, 0.2, 0.2});
    EXPECT_TRUE(std::isfinite(pred.mean));
    EXPECT_TRUE(std::isfinite(pred.variance));
}

TEST(GaussianProcess, LmlFastPathMatchesManualComputation) {
    Rng rng(7);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 10; ++i) {
        std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
        ys.push_back(x[0] * x[0] - x[2]);
        xs.push_back(std::move(x));
    }
    GaussianProcess gp;
    gp.fit(xs, ys, /*optimize=*/true);
    const GaussianProcess::Hyperparams p = gp.hyperparams();

    // Reference LML computed by hand at the fitted hyperparameters.
    double mean = 0.0;
    for (const double y : ys) mean += y;
    mean /= static_cast<double>(ys.size());
    double var = 0.0;
    for (const double y : ys) var += (y - mean) * (y - mean);
    var /= static_cast<double>(ys.size());
    const double scale = std::sqrt(var);
    const std::size_t n = xs.size();
    sdl::linalg::Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) k(i, j) = rbf(xs[i], xs[j], p);
        k(i, i) += p.noise_var;
    }
    sdl::linalg::Vec ys_std(n);
    for (std::size_t i = 0; i < n; ++i) ys_std[i] = (ys[i] - mean) / scale;
    const sdl::linalg::Cholesky chol(k);
    const double fit_term = sdl::linalg::dot(ys_std, chol.solve(ys_std));
    const double expected = -0.5 * fit_term - 0.5 * chol.log_det() -
                            0.5 * static_cast<double>(n) *
                                std::log(2.0 * std::numbers::pi);

    // The fast path (reusing the fitted factor) must agree with the
    // from-scratch computation, and the fitted params must have won the
    // grid search.
    EXPECT_NEAR(gp.log_marginal_likelihood(p), expected, 1e-9);
    for (const double lengthscale : {0.15, 0.3, 0.6, 1.2}) {
        for (const double noise : {1e-3, 1e-2, 1e-1}) {
            EXPECT_GE(gp.log_marginal_likelihood(p) + 1e-12,
                      gp.log_marginal_likelihood({lengthscale, noise, 1.0}));
        }
    }
}

TEST(GaussianProcess, PredictBatchBitwiseMatchesSequentialPredict) {
    // predict_batch is the solver's hot path; its whole contract is that
    // blocking changes nothing — every entry must carry the exact bits
    // sequential predict() produces. Property sweep: training-set sizes
    // from degenerate to solver-realistic, varying query counts, several
    // seeds, and near-duplicate training points (hard conditioning).
    for (const std::uint64_t seed : {103u, 211u, 307u}) {
        for (const std::size_t n : {1u, 2u, 3u, 5u, 9u, 17u, 40u, 64u}) {
            Rng rng(seed + n * 13);
            std::vector<std::vector<double>> xs;
            std::vector<double> ys;
            for (std::size_t i = 0; i < n; ++i) {
                std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                                      rng.uniform()};
                // Every third point duplicates its predecessor so the
                // kernel matrix is near-singular, not just friendly.
                if (i % 3 == 2) x = xs.back();
                ys.push_back(std::cos(2.0 * x[0]) + 0.5 * x[2] + 0.1 * rng.normal());
                xs.push_back(std::move(x));
            }
            GaussianProcess gp;
            gp.fit(xs, ys, /*optimize=*/n >= 9);

            const std::size_t m = 1 + (seed + n * 7) % 64;
            sdl::linalg::Matrix queries(m, 4);
            for (std::size_t j = 0; j < m; ++j)
                for (std::size_t k = 0; k < 4; ++k) queries(j, k) = rng.uniform();

            const auto batch = gp.predict_batch(queries);
            ASSERT_EQ(batch.size(), m);
            for (std::size_t j = 0; j < m; ++j) {
                const auto seq = gp.predict(queries.row(j));
                EXPECT_EQ(batch[j].mean, seq.mean)
                    << "seed=" << seed << " n=" << n << " query " << j;
                EXPECT_EQ(batch[j].variance, seq.variance)
                    << "seed=" << seed << " n=" << n << " query " << j;
            }
        }
    }
}

TEST(GaussianProcess, PredictBatchBitwiseAfterObserveUpdates) {
    // The batched path runs against the extended Cholesky factor too —
    // constant-liar picks interleave observe() with batch scoring.
    Rng rng(107);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 10; ++i) {
        std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
        ys.push_back(std::sin(4.0 * x[1]) - x[3]);
        xs.push_back(std::move(x));
    }
    GaussianProcess gp;
    gp.fit(xs, ys, /*optimize=*/true);
    for (int round = 0; round < 3; ++round) {
        gp.observe({rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()},
                   rng.uniform(-1, 1));
        sdl::linalg::Matrix queries(21, 4);
        for (std::size_t j = 0; j < queries.rows(); ++j)
            for (std::size_t k = 0; k < 4; ++k) queries(j, k) = rng.uniform();
        const auto batch = gp.predict_batch(queries);
        for (std::size_t j = 0; j < queries.rows(); ++j) {
            const auto seq = gp.predict(queries.row(j));
            EXPECT_EQ(batch[j].mean, seq.mean) << "round " << round << " query " << j;
            EXPECT_EQ(batch[j].variance, seq.variance);
        }
    }
}

TEST(GaussianProcess, PredictBatchValidatesShapes) {
    GaussianProcess gp;
    sdl::linalg::Matrix queries(3, 4);
    EXPECT_THROW(gp.predict_batch(queries), sdl::support::LogicError);
    gp.fit({{0.1, 0.2, 0.3, 0.4}, {0.5, 0.6, 0.7, 0.8}}, {1.0, 2.0},
           /*optimize=*/false);
    EXPECT_TRUE(gp.predict_batch(sdl::linalg::Matrix(0, 4)).empty());
    EXPECT_THROW(gp.predict_batch(sdl::linalg::Matrix(3, 2)),
                 sdl::support::LogicError);
}

TEST(Bayes, ScoreCandidatePoolThreadCountInvariant) {
    // n and C sit past the parallel-dispatch threshold (n^2 * C =
    // 524288 >= 262144, C > 64), so the chunked path genuinely runs.
    // The worker cap must change nothing: every entry carries the exact
    // bits of sequential predict(), at any thread count.
    Rng rng(131);
    const std::size_t n = 64;
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                              rng.uniform()};
        ys.push_back(std::sin(3.0 * x[0]) + x[1] * x[3]);
        xs.push_back(std::move(x));
    }
    GaussianProcess gp;
    gp.fit(xs, ys, /*optimize=*/false);

    sdl::linalg::Matrix pool(128, 4);
    for (std::size_t j = 0; j < pool.rows(); ++j)
        for (std::size_t k = 0; k < 4; ++k) pool(j, k) = rng.uniform();

    const auto reference = score_candidate_pool(gp, pool, /*max_workers=*/1);
    ASSERT_EQ(reference.size(), pool.rows());
    for (std::size_t j = 0; j < pool.rows(); ++j) {
        const auto seq = gp.predict(pool.row(j));
        EXPECT_EQ(reference[j].mean, seq.mean) << "candidate " << j;
        EXPECT_EQ(reference[j].variance, seq.variance) << "candidate " << j;
    }
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    for (const std::size_t workers : {std::size_t{2}, hw, std::size_t{0}}) {
        const auto scored = score_candidate_pool(gp, pool, workers);
        ASSERT_EQ(scored.size(), reference.size()) << "workers=" << workers;
        for (std::size_t j = 0; j < scored.size(); ++j) {
            EXPECT_EQ(scored[j].mean, reference[j].mean)
                << "workers=" << workers << " candidate " << j;
            EXPECT_EQ(scored[j].variance, reference[j].variance)
                << "workers=" << workers << " candidate " << j;
        }
    }
}

TEST(Bayes, SeedPairedRunsReproduceUnderBatching) {
    // The pool is generated up front and scored in (possibly parallel)
    // blocks; none of that may leak into the proposal stream — two
    // solvers with equal seeds and equal tells must propose identical
    // batches, including past warmup where the GP drives.
    const auto run = [] {
        BayesConfig config;
        config.seed = 77;
        config.candidates = 64;
        config.warmup = 4;
        BayesSolver solver(config);
        NoisyObjective objective(123);
        std::vector<std::vector<std::vector<double>>> asked;
        for (int round = 0; round < 4; ++round) {
            auto proposals = solver.ask(4);
            asked.push_back(proposals);
            std::vector<Observation> obs;
            for (const auto& p : proposals) obs.push_back(objective.evaluate(p));
            solver.tell(obs);
        }
        return asked;
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a, b);
}

TEST(GaussianProcess, FitValidatesShapes) {
    GaussianProcess gp;
    EXPECT_THROW(gp.fit({}, {}), sdl::support::LogicError);
    EXPECT_THROW(gp.fit({{0.1}}, {1.0, 2.0}), sdl::support::LogicError);
    EXPECT_THROW((void)gp.predict(std::vector<double>{0.1}), sdl::support::LogicError);
}

// ------------------------------------------------------------------ bayes

TEST(Bayes, ExpectedImprovementProperties) {
    // Zero variance -> zero EI.
    EXPECT_DOUBLE_EQ(BayesSolver::expected_improvement(5.0, 0.0, 10.0, 0.0), 0.0);
    // Mean far below incumbent -> EI near the improvement.
    EXPECT_NEAR(BayesSolver::expected_improvement(2.0, 1e-6, 10.0, 0.0), 8.0, 1e-3);
    // Mean far above incumbent with tiny variance -> ~0.
    EXPECT_NEAR(BayesSolver::expected_improvement(20.0, 1e-6, 10.0, 0.0), 0.0, 1e-9);
    // Higher variance -> more EI at equal mean.
    const double low = BayesSolver::expected_improvement(12.0, 0.5, 10.0, 0.0);
    const double high = BayesSolver::expected_improvement(12.0, 9.0, 10.0, 0.0);
    EXPECT_GT(high, low);
    EXPECT_GE(low, 0.0);
}

TEST(Bayes, WarmupProposalsAreRandomAndValid) {
    BayesConfig config;
    config.warmup = 8;
    BayesSolver solver(config);
    const auto proposals = solver.ask(8);
    ASSERT_EQ(proposals.size(), 8u);
    for (const auto& p : proposals) EXPECT_TRUE(is_valid_proposal(p, 4));
}

TEST(Bayes, BatchProposalsAreDistinct) {
    BayesConfig config;
    config.warmup = 4;
    config.candidates = 128;
    BayesSolver solver(config);
    NoisyObjective objective(23);
    // Warm up with a few evaluations.
    auto warm = solver.ask(8);
    std::vector<Observation> observations;
    for (const auto& p : warm) observations.push_back(objective.evaluate(p));
    solver.tell(observations);

    const auto batch = solver.ask(4);
    ASSERT_EQ(batch.size(), 4u);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_TRUE(is_valid_proposal(batch[i], 4));
        for (std::size_t j = i + 1; j < batch.size(); ++j) {
            EXPECT_NE(batch[i], batch[j]) << "constant liar should separate picks";
        }
    }
}

TEST(Bayes, ImprovesOverWarmupOnSmoothObjective) {
    BayesConfig config;
    config.warmup = 16;
    config.seed = 5;
    BayesSolver solver(config);
    NoisyObjective objective(47, /*noise=*/1.0);

    double warmup_best = 1e300;
    auto warm = solver.ask(16);
    std::vector<Observation> observations;
    for (const auto& p : warm) {
        observations.push_back(objective.evaluate(p));
        warmup_best = std::min(warmup_best, observations.back().score);
    }
    solver.tell(observations);

    double model_best = warmup_best;
    for (int round = 0; round < 10; ++round) {
        const auto batch = solver.ask(4);
        std::vector<Observation> obs;
        for (const auto& p : batch) {
            obs.push_back(objective.evaluate(p));
            model_best = std::min(model_best, obs.back().score);
        }
        solver.tell(obs);
    }
    EXPECT_LT(model_best, warmup_best);
    EXPECT_LT(model_best, 20.0);
}

// -------------------------------------------------------------- baselines

TEST(Baselines, GridScansLatticeInOrder) {
    GridSolver solver(2, 3);
    const auto first = solver.ask(4);
    // 3x3 lattice, skipping the all-zero corner: (0.5,0), (1,0), (0,0.5)...
    EXPECT_EQ(first[0], (std::vector<double>{0.5, 0.0}));
    EXPECT_EQ(first[1], (std::vector<double>{1.0, 0.0}));
    EXPECT_EQ(first[2], (std::vector<double>{0.0, 0.5}));
}

TEST(Baselines, OracleHitsNoiseFloor) {
    NoisyObjective objective(61);
    OracleSolver solver(objective.mixer(), kTarget);
    const double best = run_loop(solver, objective, 16, 4);
    // Only measurement noise separates the oracle from zero.
    EXPECT_LT(best, 6.0);
}

TEST(Baselines, OracleRejectsUnreachableTarget) {
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    EXPECT_THROW(OracleSolver(mixer, Rgb8{255, 0, 0}), sdl::support::ConfigError);
}

// ---------------------------------------------------------------- factory

TEST(Factory, BuildsEveryRegisteredSolver) {
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    SolverOptions options;
    options.mixer = &mixer;
    for (const std::string& name : solver_names()) {
        const auto solver = make_solver(name, options);
        ASSERT_NE(solver, nullptr) << name;
        EXPECT_EQ(solver->name(), name == "bayesian" ? "bayesian" : name);
        const auto proposals = solver->ask(2);
        EXPECT_EQ(proposals.size(), 2u) << name;
    }
}

TEST(Factory, UnknownNameThrows) {
    EXPECT_THROW((void)make_solver("simulated_annealing", {}), sdl::support::ConfigError);
}

TEST(Factory, OracleWithoutMixerThrows) {
    EXPECT_THROW((void)make_solver("oracle", {}), sdl::support::ConfigError);
}

// Property sweep: every solver produces valid proposals for varied batch
// sizes, before and after feedback.
class SolverContract
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(SolverContract, ProposalsAlwaysValid) {
    const auto& [name, batch] = GetParam();
    const BeerLambertMixer mixer(DyeLibrary::cmyk());
    SolverOptions options;
    options.mixer = &mixer;
    options.seed = 123;
    const auto solver = make_solver(name, options);
    NoisyObjective objective(7);

    for (int round = 0; round < 3; ++round) {
        const auto proposals = solver->ask(batch);
        ASSERT_EQ(proposals.size(), batch);
        std::vector<Observation> observations;
        for (const auto& p : proposals) {
            EXPECT_TRUE(is_valid_proposal(p, 4)) << name << " round " << round;
            observations.push_back(objective.evaluate(p));
        }
        solver->tell(observations);
    }
    EXPECT_TRUE(solver->best().has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, SolverContract,
    ::testing::Combine(::testing::Values("genetic", "bayesian", "anneal", "pattern",
                                         "random", "grid", "oracle"),
                       ::testing::Values(std::size_t{1}, std::size_t{4}, std::size_t{16})));

// ---------------------------------------------------- anneal & pattern

TEST(Anneal, TemperatureCoolsAcrossGenerations) {
    AnnealConfig config;
    config.initial_temperature = 20.0;
    config.cooling = 0.9;
    AnnealSolver solver(config);
    NoisyObjective objective(71);
    const double t0 = solver.temperature();
    for (int gen = 0; gen < 5; ++gen) {
        const auto proposals = solver.ask(4);
        std::vector<Observation> obs;
        for (const auto& p : proposals) obs.push_back(objective.evaluate(p));
        solver.tell(obs);
    }
    EXPECT_NEAR(solver.temperature(), t0 * std::pow(0.9, 5), 1e-9);
}

TEST(Anneal, ConvergesOnColorObjective) {
    AnnealConfig config;
    config.seed = 5;
    AnnealSolver solver(config);
    NoisyObjective objective(73);
    const double best = run_loop(solver, objective, 128, 4);
    EXPECT_LT(best, 15.0);
}

TEST(Anneal, ProposalsPerturbAroundState) {
    AnnealConfig config;
    config.initial_step = 0.1;
    AnnealSolver solver(config);
    // Seed a state via tell.
    Observation obs{{0.5, 0.5, 0.5, 0.5}, {100, 100, 100}, 10.0};
    solver.tell(std::vector<Observation>{obs});
    for (const auto& p : solver.ask(8)) {
        for (std::size_t d = 0; d < 4; ++d) {
            EXPECT_NEAR(p[d], 0.5, 0.1 + 1e-9);
        }
    }
}

TEST(Pattern, StepShrinksWithoutImprovement) {
    PatternConfig config;
    config.initial_step = 0.2;
    config.shrink = 0.5;
    PatternSearchSolver solver(config);
    // Cold start.
    auto initial = solver.ask(4);
    std::vector<Observation> obs;
    for (const auto& p : initial) obs.push_back({p, {0, 0, 0}, 5.0});
    solver.tell(obs);
    EXPECT_DOUBLE_EQ(solver.step(), 0.2);
    // A probe round where nothing improves on the incumbent (score 5).
    auto probes = solver.ask(8);
    obs.clear();
    for (const auto& p : probes) obs.push_back({p, {0, 0, 0}, 50.0});
    solver.tell(obs);
    EXPECT_DOUBLE_EQ(solver.step(), 0.1);
}

TEST(Pattern, ProbesAreAxisAlignedAroundIncumbent) {
    PatternSearchSolver solver;
    auto initial = solver.ask(1);
    std::vector<Observation> obs{{initial[0], {0, 0, 0}, 5.0}};
    solver.tell(obs);
    const auto probes = solver.ask(8);
    for (const auto& p : probes) {
        // Each compass probe differs from the incumbent in at most one
        // coordinate (clamping can null a move at the boundary).
        int changed = 0;
        for (std::size_t d = 0; d < 4; ++d) {
            if (std::fabs(p[d] - initial[0][d]) > 1e-12) ++changed;
        }
        EXPECT_LE(changed, 1);
    }
}

TEST(Pattern, ConvergesOnColorObjective) {
    PatternConfig config;
    config.seed = 7;
    PatternSearchSolver solver(config);
    NoisyObjective objective(79);
    const double best = run_loop(solver, objective, 128, 8);
    EXPECT_LT(best, 15.0);
}
