// Tests for the spectral color model (banded spectra, CIE integration,
// spectral Beer–Lambert mixing).
#include <gtest/gtest.h>

#include <cmath>

#include "color/spectral.hpp"
#include "support/common.hpp"

using namespace sdl::color;

TEST(Spectral, BandWavelengthsSpanVisibleRange) {
    EXPECT_DOUBLE_EQ(band_wavelength(0), 400.0);
    EXPECT_DOUBLE_EQ(band_wavelength(kSpectralBands - 1), 700.0);
    for (std::size_t i = 1; i < kSpectralBands; ++i) {
        EXPECT_GT(band_wavelength(i), band_wavelength(i - 1));
    }
}

TEST(Spectral, CmfsPeakNearExpectedWavelengths) {
    // y_bar peaks near 555 nm, x_bar's main lobe near 600, z_bar near 445.
    auto argmax = [](const Spectrum& s) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < kSpectralBands; ++i) {
            if (s[i] > s[best]) best = i;
        }
        return band_wavelength(best);
    };
    EXPECT_NEAR(argmax(cie_y_bar()), 555.0, 25.0);
    EXPECT_NEAR(argmax(cie_x_bar()), 600.0, 25.0);
    EXPECT_NEAR(argmax(cie_z_bar()), 445.0, 25.0);
    // All non-negative except x_bar's small negative fit lobe.
    for (std::size_t i = 0; i < kSpectralBands; ++i) {
        EXPECT_GE(cie_y_bar()[i], 0.0);
        EXPECT_GE(cie_z_bar()[i], -1e-9);
    }
}

TEST(Spectral, GaussianBandShape) {
    const Spectrum s = Spectrum::gaussian_band(550.0, 30.0, 2.0);
    std::size_t peak = 0;
    for (std::size_t i = 1; i < kSpectralBands; ++i) {
        if (s[i] > s[peak]) peak = i;
    }
    EXPECT_NEAR(band_wavelength(peak), 550.0, 15.0);
    // The 20 nm band grid does not land exactly on the 550 nm center.
    EXPECT_NEAR(s[peak], 2.0, 0.15);
    EXPECT_LT(s[0], 0.01);  // far tail
}

TEST(Spectral, EmptyWellIsWhite) {
    const SpectralMixer mixer = SpectralMixer::cmyk_flat();
    const std::vector<double> none{0, 0, 0, 0};
    const Rgb8 c = mixer.mix_ratios(none);
    // A flat spectrum through the CIE integration is near-white (it is
    // not exactly D65, so allow a mild cast).
    EXPECT_GT(c.r, 230);
    EXPECT_GT(c.g, 230);
    EXPECT_GT(c.b, 230);
}

TEST(Spectral, DyesProduceTheirHues) {
    const SpectralMixer mixer = SpectralMixer::cmyk_flat();
    const Rgb8 cyan = mixer.mix_ratios(std::vector<double>{1, 0, 0, 0});
    EXPECT_LT(cyan.r, cyan.g);
    EXPECT_LT(cyan.r, cyan.b);
    const Rgb8 magenta = mixer.mix_ratios(std::vector<double>{0, 1, 0, 0});
    EXPECT_LT(magenta.g, magenta.r);
    EXPECT_LT(magenta.g, magenta.b);
    const Rgb8 yellow = mixer.mix_ratios(std::vector<double>{0, 0, 1, 0});
    EXPECT_LT(yellow.b, yellow.r);
    EXPECT_LT(yellow.b, yellow.g);
    const Rgb8 black = mixer.mix_ratios(std::vector<double>{0, 0, 0, 1});
    EXPECT_LT(black.r, 70);
    EXPECT_LT(black.g, 70);
    EXPECT_LT(black.b, 70);
}

TEST(Spectral, RatioScaleInvariance) {
    const SpectralMixer mixer = SpectralMixer::cmyk_flat();
    const std::vector<double> a{0.2, 0.3, 0.1, 0.4};
    const std::vector<double> b{0.4, 0.6, 0.2, 0.8};
    EXPECT_EQ(mixer.mix_ratios(a), mixer.mix_ratios(b));
}

TEST(Spectral, MoreBlackIsDarker) {
    const SpectralMixer mixer = SpectralMixer::cmyk_flat();
    int prev = 3 * 255 + 1;
    for (double k = 0.0; k <= 1.0; k += 0.2) {
        const std::vector<double> ratios{(1 - k) / 3, (1 - k) / 3, (1 - k) / 3, k};
        const Rgb8 c = mixer.mix_ratios(ratios);
        const int sum = c.r + c.g + c.b;
        EXPECT_LE(sum, prev);
        prev = sum;
    }
}

TEST(Spectral, TransmittedSpectrumRespectsAbsorptionBands) {
    const SpectralMixer mixer = SpectralMixer::cmyk_flat();
    // Pure cyan: long wavelengths (red, ~650 nm) attenuated far more than
    // short (blue, ~450 nm).
    const Spectrum t = mixer.transmitted(std::vector<double>{1, 0, 0, 0});
    double red_band = 1.0, blue_band = 1.0;
    for (std::size_t i = 0; i < kSpectralBands; ++i) {
        if (std::fabs(band_wavelength(i) - 650.0) < 15.0) red_band = t[i];
        if (std::fabs(band_wavelength(i) - 450.0) < 15.0) blue_band = t[i];
    }
    EXPECT_LT(red_band, 0.3 * blue_band);
}

TEST(Spectral, AgreesQualitativelyWithRgbMixer) {
    // Both chemistries must order grays the same way: increasing black
    // fraction darkens, and equal-CMY mixtures stay near-neutral.
    const SpectralMixer spectral = SpectralMixer::cmyk_flat();
    const std::vector<double> neutral{0.25, 0.25, 0.25, 0.25};
    const Rgb8 c = spectral.mix_ratios(neutral);
    const int spread = std::max({c.r, c.g, c.b}) - std::min({c.r, c.g, c.b});
    EXPECT_LT(spread, 45);  // near-neutral
}

TEST(Spectral, ValidationErrors) {
    const SpectralMixer mixer = SpectralMixer::cmyk_flat();
    const std::vector<double> wrong_size{0.5, 0.5};
    EXPECT_THROW((void)mixer.mix_ratios(wrong_size), sdl::support::LogicError);
    const std::vector<double> negative{-0.1, 0.4, 0.4, 0.3};
    EXPECT_THROW((void)mixer.mix_ratios(negative), sdl::support::LogicError);
}

TEST(Spectral, MetamerismIsPossible) {
    // Two different spectra can integrate to (nearly) the same XYZ: a
    // flat gray transmission vs a spiky one. This is the physical effect
    // an RGB-only chemistry cannot represent.
    Spectrum flat(0.5);
    Spectrum spiky(0.0);
    // Three spikes roughly balancing the CMF lobes.
    for (std::size_t i = 0; i < kSpectralBands; ++i) {
        const double lambda = band_wavelength(i);
        if (std::fabs(lambda - 450) < 12 || std::fabs(lambda - 550) < 12 ||
            std::fabs(lambda - 610) < 12) {
            spiky[i] = 0.9;
        }
    }
    const Xyz a = spectrum_to_xyz(flat);
    const Xyz b = spectrum_to_xyz(spiky);
    // Luminances comparable while the spectra are wildly different.
    EXPECT_NEAR(b.y / a.y, 1.0, 0.35);
    double l1 = 0.0;
    for (std::size_t i = 0; i < kSpectralBands; ++i) l1 += std::fabs(flat[i] - spiky[i]);
    EXPECT_GT(l1, 4.0);
}
