// Tests for support utilities: RNG, units, thread pool, channel, stats,
// tables, CSV, error helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <future>
#include <thread>

#include "support/atomic_io.hpp"
#include "support/channel.hpp"
#include "support/common.hpp"
#include "support/csv.hpp"
#include "support/failpoint.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/subprocess.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/units.hpp"

#if !defined(_WIN32)
#include <pthread.h>
#include <signal.h>
#include <unistd.h>
#endif

using namespace sdl::support;

// ----------------------------------------------------------------- common

TEST(Common, CheckThrowsOnViolation) {
    EXPECT_NO_THROW(check(true, "fine"));
    EXPECT_THROW(check(false, "boom"), LogicError);
}

TEST(Common, NarrowDetectsLoss) {
    EXPECT_EQ(narrow<std::uint8_t>(200), 200);
    EXPECT_THROW((void)narrow<std::uint8_t>(300), LogicError);
    EXPECT_THROW((void)narrow<std::uint8_t>(-1), LogicError);
    EXPECT_EQ(narrow<int>(std::int64_t{123}), 123);
}

TEST(Common, ApproxEqual) {
    EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(approx_equal(1.0, 1.1));
    EXPECT_TRUE(approx_equal(1e12, 1e12 * (1 + 1e-12)));
}

// ------------------------------------------------------------------ units

TEST(Units, DurationArithmetic) {
    const Duration d = Duration::hours(8) + Duration::minutes(12);
    EXPECT_DOUBLE_EQ(d.to_seconds(), 29520.0);
    EXPECT_DOUBLE_EQ(d.to_minutes(), 492.0);
    EXPECT_DOUBLE_EQ((d / 2.0).to_minutes(), 246.0);
    EXPECT_DOUBLE_EQ(d / Duration::minutes(1), 492.0);
}

TEST(Units, DurationPrettyMatchesPaperStyle) {
    EXPECT_EQ((Duration::hours(8) + Duration::minutes(12)).pretty(), "8 h 12 m");
    EXPECT_EQ((Duration::minutes(3) + Duration::seconds(48)).pretty(), "3 m 48 s");
    EXPECT_EQ(Duration::seconds(42.65).pretty(), "42.6 s");
    EXPECT_EQ((Duration::hours(5) + Duration::minutes(10)).pretty(), "5 h 10 m");
}

TEST(Units, TimePointDifference) {
    const TimePoint a = TimePoint::from_seconds(100);
    const TimePoint b = a + Duration::seconds(30);
    EXPECT_DOUBLE_EQ((b - a).to_seconds(), 30.0);
    EXPECT_LT(a, b);
}

TEST(Units, VolumeConversions) {
    const Volume v = Volume::milliliters(1.5);
    EXPECT_DOUBLE_EQ(v.to_microliters(), 1500.0);
    EXPECT_EQ((Volume::microliters(40) + Volume::microliters(2)).pretty(), "42.0 uL");
    EXPECT_EQ(Volume::milliliters(2).pretty(), "2.00 mL");
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForEqualSeeds) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(std::uint64_t{6});
        EXPECT_LT(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);  // all faces observed
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(std::int64_t{-3}, std::int64_t{3});
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
    Rng rng(11);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ExponentialMean) {
    Rng rng(17);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(3.0));
    EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(Rng, PermutationIsAPermutation) {
    Rng rng(19);
    const auto perm = rng.permutation(50);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
    Rng parent(23);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
    EXPECT_LT(same, 2);
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, SubmitReturnsResults) {
    ThreadPool pool(4);
    auto f1 = pool.submit([] { return 21 * 2; });
    auto f2 = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
    ThreadPool pool(2);
    auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t i) {
                                       if (i == 37) throw std::runtime_error("x");
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
    ThreadPool pool(4);
    const auto out = pool.parallel_map(64, [](std::size_t i) { return i * i; });
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelForWorksWithMoreTasksThanThreads) {
    ThreadPool pool(1);
    std::atomic<int> count{0};
    pool.parallel_for(256, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 256);
}

TEST(ThreadPool, HintedParallelMapPreservesOrderForAnyChunk) {
    ThreadPool pool(4);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{100}}) {
        ParallelOptions options;
        options.chunk = chunk;
        const auto out =
            pool.parallel_map(64, [](std::size_t i) { return i * i; }, options);
        ASSERT_EQ(out.size(), 64u);
        for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
    }
}

TEST(ThreadPool, HintedParallelMapRespectsWorkerCap) {
    ThreadPool pool(4);
    ParallelOptions options;
    options.max_workers = 2;
    std::atomic<int> in_flight{0};
    std::atomic<int> peak{0};
    const auto out = pool.parallel_map(
        32,
        [&](std::size_t i) {
            const int now = in_flight.fetch_add(1) + 1;
            int expected = peak.load();
            while (now > expected && !peak.compare_exchange_weak(expected, now)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            in_flight.fetch_sub(1);
            return i;
        },
        options);
    EXPECT_EQ(out.size(), 32u);
    EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPool, HintedParallelMapPropagatesWorkerExceptions) {
    // Regression: a throw from any worker task must surface to the
    // caller (not deadlock, not get swallowed) for every chunk shape.
    ThreadPool pool(4);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{5}}) {
        ParallelOptions options;
        options.chunk = chunk;
        EXPECT_THROW(pool.parallel_map(
                         100,
                         [](std::size_t i) -> int {
                             if (i == 37) throw std::runtime_error("boom");
                             return 0;
                         },
                         options),
                     std::runtime_error);
    }
}

TEST(ThreadPool, HintedParallelMapSafeUnderNesting) {
    // Regression: with every pool worker occupied by an outer task that
    // itself calls the hinted parallel_map, the inner calls must complete
    // on the calling threads instead of blocking forever on queued helper
    // drains no free worker can run.
    ThreadPool pool(2);
    auto outer = [&pool] {
        const auto out =
            pool.parallel_map(8, [](std::size_t i) { return i; }, ParallelOptions{});
        std::size_t sum = 0;
        for (const std::size_t v : out) sum += v;
        return sum;
    };
    auto f1 = pool.submit(outer);
    auto f2 = pool.submit(outer);
    EXPECT_EQ(f1.get(), 28u);
    EXPECT_EQ(f2.get(), 28u);
}

TEST(ThreadPool, HintedParallelMapHandlesEdgeSizes) {
    ThreadPool pool(2);
    ParallelOptions options;
    options.chunk = 0;  // treated as 1
    EXPECT_TRUE(pool.parallel_map(0, [](std::size_t i) { return i; }, options).empty());
    options.max_workers = 99;  // capped at pool size
    const auto out = pool.parallel_map(3, [](std::size_t i) { return i + 1; }, options);
    EXPECT_EQ(out, (std::vector<std::size_t>{1, 2, 3}));
}

// ---------------------------------------------------------------- channel

TEST(Channel, SendReceiveInOrder) {
    Channel<int> ch;
    ch.send(1);
    ch.send(2);
    ch.send(3);
    EXPECT_EQ(ch.receive(), 1);
    EXPECT_EQ(ch.receive(), 2);
    EXPECT_EQ(ch.receive(), 3);
}

TEST(Channel, CloseDrainsThenSignals) {
    Channel<int> ch;
    ch.send(7);
    ch.close();
    EXPECT_FALSE(ch.send(8));
    EXPECT_EQ(ch.receive(), 7);
    EXPECT_EQ(ch.receive(), std::nullopt);
}

TEST(Channel, TryOperations) {
    Channel<int> ch(2);
    EXPECT_TRUE(ch.try_send(1));
    EXPECT_TRUE(ch.try_send(2));
    EXPECT_FALSE(ch.try_send(3));  // full
    EXPECT_EQ(ch.try_receive(), 1);
    EXPECT_TRUE(ch.try_send(3));
    EXPECT_EQ(ch.try_receive(), 2);
    EXPECT_EQ(ch.try_receive(), 3);
    EXPECT_EQ(ch.try_receive(), std::nullopt);
}

TEST(Channel, CrossThreadTransfer) {
    Channel<int> ch;
    std::thread producer([&] {
        for (int i = 0; i < 100; ++i) ch.send(i);
        ch.close();
    });
    int expected = 0;
    while (auto v = ch.receive()) {
        EXPECT_EQ(*v, expected++);
    }
    EXPECT_EQ(expected, 100);
    producer.join();
}

// Shutdown stress: the teardown handshakes (pool dtor draining workers,
// close() releasing blocked senders/receivers) are where races hide —
// repeated create/submit/destroy cycles give TSan (the `tsan` preset)
// real interleavings to bite on, and catch lost-wakeup hangs on any
// build by simply not terminating.

TEST(ThreadPool, RepeatedCreateSubmitDestroy) {
    std::atomic<int> executed{0};
    for (int cycle = 0; cycle < 50; ++cycle) {
        ThreadPool pool(4);
        std::vector<std::future<int>> futures;
        futures.reserve(8);
        for (int i = 0; i < 8; ++i) {
            futures.push_back(pool.submit([&executed, i] {
                executed.fetch_add(1, std::memory_order_relaxed);
                return i;
            }));
        }
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
        }
        // Dtor runs here with the queue already drained.
    }
    EXPECT_EQ(executed.load(), 50 * 8);
}

TEST(ThreadPool, DestroyWithUnclaimedWorkRunsEverything) {
    // Submit-then-immediately-destroy: the dtor's contract is to finish
    // queued work, not drop it, and every future must become ready.
    for (int cycle = 0; cycle < 50; ++cycle) {
        std::atomic<int> executed{0};
        std::vector<std::future<void>> futures;
        {
            ThreadPool pool(2);
            futures.reserve(16);
            for (int i = 0; i < 16; ++i) {
                futures.push_back(pool.submit(
                    [&executed] { executed.fetch_add(1, std::memory_order_relaxed); }));
            }
        }
        for (auto& f : futures) f.get();
        EXPECT_EQ(executed.load(), 16);
    }
}

TEST(Channel, CloseWhileManyBlockedOnReceive) {
    for (int cycle = 0; cycle < 25; ++cycle) {
        Channel<int> ch;
        std::atomic<int> received{0};
        std::vector<std::thread> readers;
        readers.reserve(4);
        for (int r = 0; r < 4; ++r) {
            readers.emplace_back([&] {
                while (ch.receive()) received.fetch_add(1, std::memory_order_relaxed);
            });
        }
        for (int i = 0; i < 32; ++i) ch.send(i);
        ch.close();  // must wake every parked reader exactly once
        for (auto& t : readers) t.join();
        EXPECT_EQ(received.load(), 32);
    }
}

TEST(Channel, CloseWhileSendersBlockedOnFullBuffer) {
    for (int cycle = 0; cycle < 25; ++cycle) {
        Channel<int> ch(2);
        std::atomic<int> accepted{0};
        std::vector<std::thread> senders;
        senders.reserve(3);
        for (int s = 0; s < 3; ++s) {
            senders.emplace_back([&, s] {
                for (int i = 0; i < 8; ++i) {
                    if (ch.send(s * 8 + i)) {
                        accepted.fetch_add(1, std::memory_order_relaxed);
                    } else {
                        return;  // closed under us — the expected exit
                    }
                }
            });
        }
        // Drain a few, then slam the door with senders still parked on
        // the full buffer; close() must release them with send()==false.
        for (int i = 0; i < 5; ++i) ch.receive();
        ch.close();
        for (auto& t : senders) t.join();
        // Everything accepted before close stays receivable (drain
        // semantics), and nothing is double-delivered.
        int drained = 5;
        while (ch.receive()) ++drained;
        EXPECT_EQ(drained, accepted.load());
    }
}

// ------------------------------------------------------------------ stats

TEST(Stats, OnlineMatchesBatch) {
    const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
    OnlineStats online;
    for (double x : xs) online.add(x);
    EXPECT_DOUBLE_EQ(online.mean(), mean(xs));
    EXPECT_NEAR(online.stddev(), stddev(xs), 1e-12);
    EXPECT_DOUBLE_EQ(online.min(), 1.0);
    EXPECT_DOUBLE_EQ(online.max(), 8.0);
}

TEST(Stats, PercentileInterpolates) {
    const std::vector<double> xs{10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAlignedColumns) {
    TextTable t({"Metric", "Value"});
    t.set_alignment({TextTable::Align::Left, TextTable::Align::Right});
    t.add_row({"Time without humans", "8 h 12 m"});
    t.add_row({"Total colors mixed", "128"});
    const std::string out = t.str();
    EXPECT_NE(out.find("Metric"), std::string::npos);
    EXPECT_NE(out.find("8 h 12 m"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
    // Right-aligned numeric column: "128" ends its line.
    EXPECT_NE(out.find("     128\n"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), LogicError);
}

TEST(Table, FmtDouble) {
    EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
    EXPECT_EQ(fmt_double(2.0, 0), "2");
}

// -------------------------------------------------------------------- csv

TEST(Csv, WritesQuotedCells) {
    CsvWriter csv({"name", "value"});
    csv.add_row(std::vector<std::string>{"plain", "1"});
    csv.add_row(std::vector<std::string>{"with,comma", "quote\"inside"});
    const std::string& out = csv.str();
    EXPECT_NE(out.find("name,value\n"), std::string::npos);
    EXPECT_NE(out.find("\"with,comma\",\"quote\"\"inside\"\n"), std::string::npos);
    EXPECT_EQ(csv.rows(), 2u);
}

TEST(Csv, NumericRows) {
    CsvWriter csv({"x", "y"});
    csv.add_row(std::vector<double>{1.5, 2.0});
    EXPECT_NE(csv.str().find("1.5,2\n"), std::string::npos);
}

TEST(Csv, NumericRowsRoundTrip) {
    // Shortest-round-trip cells: parsing the text back gives the exact
    // double, and integral values stay compact.
    const double third = 1.0 / 3.0;
    const std::string text = fmt_roundtrip(third);
    EXPECT_EQ(std::stod(text), third);
    EXPECT_EQ(fmt_roundtrip(2.0), "2");
    EXPECT_EQ(fmt_roundtrip(1.5), "1.5");
    EXPECT_EQ(fmt_roundtrip(-0.125), "-0.125");
    // A value "%.6g" used to truncate survives the new format.
    const double precise = 123.456789012345;
    EXPECT_EQ(std::stod(fmt_roundtrip(precise)), precise);
}

// -------------------------------------------------------------- atomic io

namespace {

std::string slurp(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
}

}  // namespace

TEST(AtomicIo, WritesAndOverwritesWholeFiles) {
    const std::string dir = "test_support_atomic_io";
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/doc.txt";
    atomic_write(path, "first\n");
    EXPECT_EQ(slurp(path), "first\n");
    atomic_write(path, "second version\n");
    EXPECT_EQ(slurp(path), "second version\n");
    // No temp files left behind.
    std::size_t entries = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
    std::filesystem::remove_all(dir);
}

TEST(AtomicIo, AtomicWriteToUnwritablePathThrows) {
    EXPECT_THROW(atomic_write("no_such_dir_xyz/doc.txt", "x"), Error);
}

TEST(AtomicIo, AppendWriterAppendsOneLinePerRecord) {
    const std::string dir = "test_support_append";
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/journal.jsonl";
    {
        AppendWriter writer(path);
        writer.append_line("{\"a\":1}");
        writer.append_line("{\"b\":2}");
    }
    {
        // Reopening appends after existing content (O_APPEND semantics).
        AppendWriter writer(path);
        writer.append_line("{\"c\":3}");
    }
    EXPECT_EQ(slurp(path), "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n");
    AppendWriter writer(path);
    EXPECT_THROW(writer.append_line("two\nlines"), LogicError);
    std::filesystem::remove_all(dir);
}

TEST(Csv, RowWidthMismatchThrows) {
    CsvWriter csv({"a", "b"});
    EXPECT_THROW(csv.add_row(std::vector<std::string>{"x"}), LogicError);
}

// -------------------------------------------------------------- failpoint

namespace {

/// Every failpoint test disarms on both edges so a failed EXPECT cannot
/// leak an armed schedule into later tests in this process.
struct FailpointGuard {
    FailpointGuard() { sdl::support::failpoint::disarm(); }
    ~FailpointGuard() { sdl::support::failpoint::disarm(); }
};

}  // namespace

TEST(Failpoint, DisarmedByDefaultAndZeroCost) {
    FailpointGuard guard;
    EXPECT_FALSE(failpoint::armed());
    EXPECT_EQ(failpoint::evaluate("atomic_io.rename").action,
              failpoint::Action::None);
    EXPECT_NO_THROW(failpoint::maybe_fail("atomic_io.rename", "io"));
}

TEST(Failpoint, ParsesTheFullGrammar) {
    const failpoint::Spec spec = failpoint::parse(
        "worker.pre_ack_kill=kill@2#1,atomic_io.rename=err:0.5@3,"
        "journal.append_short_write=err(7),worker.cell_start[5]=kill,"
        "subprocess.spawn=delay(120),seed=9");
    EXPECT_EQ(spec.seed, 9u);
    ASSERT_EQ(spec.entries.size(), 5u);
    EXPECT_EQ(spec.entries[0].site, "worker.pre_ack_kill");
    EXPECT_EQ(spec.entries[0].action, failpoint::Action::Kill);
    EXPECT_EQ(spec.entries[0].nth, 2u);
    EXPECT_EQ(spec.entries[0].count, 1u);
    EXPECT_EQ(spec.entries[1].action, failpoint::Action::Err);
    EXPECT_DOUBLE_EQ(spec.entries[1].prob, 0.5);
    EXPECT_EQ(spec.entries[1].nth, 3u);
    EXPECT_EQ(spec.entries[1].count, 0u);  // unlimited
    EXPECT_EQ(spec.entries[2].param, 7);
    ASSERT_TRUE(spec.entries[3].filter.has_value());
    EXPECT_EQ(*spec.entries[3].filter, 5);
    EXPECT_EQ(spec.entries[4].action, failpoint::Action::Delay);
    EXPECT_EQ(spec.entries[4].param, 120);
    // Empty spec is valid (arming it is a no-op).
    EXPECT_TRUE(failpoint::parse("").entries.empty());
}

TEST(Failpoint, RejectsMalformedSpecsLoudly) {
    for (const char* bad :
         {"norhs", "site=", "site=explode", "site=err:2.0", "site=err:0",
          "site=err@0", "site[x]=err", "site=err(abc)", "seed=x", "=err",
          "site=err:0.5@", "site=err,,site2=err"}) {
        EXPECT_THROW((void)failpoint::parse(bad), ConfigError) << bad;
    }
}

TEST(Failpoint, NthCountAndFilterScheduleHits) {
    FailpointGuard guard;
    // Eligible from the 2nd hit, at most 2 fires.
    failpoint::arm("x.y=err@2#2");
    EXPECT_TRUE(failpoint::armed());
    EXPECT_EQ(failpoint::evaluate("x.y").action, failpoint::Action::None);
    EXPECT_EQ(failpoint::evaluate("x.y").action, failpoint::Action::Err);
    EXPECT_EQ(failpoint::evaluate("x.y").action, failpoint::Action::Err);
    EXPECT_EQ(failpoint::evaluate("x.y").action, failpoint::Action::None);
    // Other sites are untouched.
    EXPECT_EQ(failpoint::evaluate("x.z").action, failpoint::Action::None);
    // Filtered entries only see matching hits — and only those advance
    // the hit counter.
    failpoint::arm("cell.start[5]=err@2");
    EXPECT_EQ(failpoint::evaluate("cell.start", 4).action,
              failpoint::Action::None);
    EXPECT_EQ(failpoint::evaluate("cell.start", 5).action,
              failpoint::Action::None);  // 1st matching hit, nth=2
    EXPECT_EQ(failpoint::evaluate("cell.start", 4).action,
              failpoint::Action::None);
    EXPECT_EQ(failpoint::evaluate("cell.start", 5).action,
              failpoint::Action::Err);
}

TEST(Failpoint, ProbabilisticFiresAreSeededAndReproducible) {
    FailpointGuard guard;
    const auto draw = [&](std::uint64_t seed) {
        failpoint::arm("p.q=err:0.5,seed=" + std::to_string(seed));
        std::string pattern;
        for (int i = 0; i < 64; ++i) {
            pattern += failpoint::evaluate("p.q").action == failpoint::Action::Err
                           ? '1'
                           : '0';
        }
        return pattern;
    };
    const std::string a = draw(1);
    EXPECT_EQ(a, draw(1));  // re-arming resets counters: exact replay
    EXPECT_NE(a, draw(2));  // a different seed is a different schedule
    EXPECT_NE(a.find('1'), std::string::npos);
    EXPECT_NE(a.find('0'), std::string::npos);
}

TEST(Failpoint, MaybeFailThrowsTheNamedCategory) {
    FailpointGuard guard;
    failpoint::arm("boom.site=err#1");
    try {
        failpoint::maybe_fail("boom.site", "io");
        FAIL() << "armed err failpoint did not throw";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), "io");
        EXPECT_NE(std::string(e.what()).find("boom.site"), std::string::npos);
    }
    // #1 exhausted the entry: the site is quiet again.
    EXPECT_NO_THROW(failpoint::maybe_fail("boom.site", "io"));
}

TEST(Failpoint, AtomicWriteInjectionLeavesTheOldFileIntact) {
    FailpointGuard guard;
    const std::string dir = "test_support_failpoint_atomic";
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/doc.txt";
    atomic_write(path, "original\n");
    for (const char* site : {"atomic_io.rename=err#1", "atomic_io.fsync=err#1"}) {
        failpoint::arm(site);
        EXPECT_THROW(atomic_write(path, "clobber\n"), Error) << site;
        EXPECT_EQ(slurp(path), "original\n") << site;
        // The failed attempt's temp file is cleaned up, not leaked.
        std::size_t entries = 0;
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
            (void)entry;
            ++entries;
        }
        EXPECT_EQ(entries, 1u) << site;
        // The injection budget (#1) is spent: the retry goes through.
        atomic_write(path, "updated\n");
        EXPECT_EQ(slurp(path), "updated\n") << site;
        atomic_write(path, "original\n");
    }
    std::filesystem::remove_all(dir);
}

#if !defined(_WIN32)
namespace {
void ignore_usr1(int) {}
}  // namespace

TEST(Subprocess, PollReadableSurvivesEintr) {
    // Regression: poll_readable used to report EINTR as a timeout, so a
    // stray signal made the fleet's coordinator loop think every worker
    // went silent. Now it retries with the remaining budget.
    struct sigaction sa = {};
    struct sigaction old = {};
    sa.sa_handler = ignore_usr1;
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

    int fds[2] = {-1, -1};
    ASSERT_EQ(pipe(fds), 0);
    const pthread_t poller = pthread_self();
    std::thread writer([&] {
        // A burst of signals lands mid-poll, then the byte arrives; a
        // poll that treats EINTR as a timeout never sees it.
        for (int i = 0; i < 5; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            pthread_kill(poller, SIGUSR1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ASSERT_EQ(write(fds[1], "x", 1), 1);
    });
    const std::vector<bool> readable =
        poll_readable(std::vector<int>{fds[0]}, 2000);
    writer.join();
    ASSERT_EQ(readable.size(), 1u);
    EXPECT_TRUE(readable[0]);
    (void)sigaction(SIGUSR1, &old, nullptr);
    close(fds[0]);
    close(fds[1]);
}
#endif
