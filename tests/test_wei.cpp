// Tests for the WEI framework: modules, plates/locations, workcell and
// workflow notation, transports, fault injection and the engine.
#include <gtest/gtest.h>

#include <memory>

#include "des/simulation.hpp"
#include "support/common.hpp"
#include "wei/engine.hpp"
#include "wei/event_log.hpp"
#include "wei/faults.hpp"
#include "wei/module.hpp"
#include "wei/plate.hpp"
#include "wei/sim_transport.hpp"
#include "wei/thread_transport.hpp"
#include "wei/workcell.hpp"
#include "wei/workflow.hpp"

using namespace sdl::wei;
using sdl::des::Simulation;
using sdl::support::Duration;
namespace json = sdl::support::json;

namespace {

/// Minimal instrument for engine/transport tests: a 10-second "work"
/// action that counts executions.
class StubDevice final : public Module {
public:
    explicit StubDevice(std::string name, bool robotic = true) {
        info_ = ModuleInfo{std::move(name), "Stub", "test device", {"work"}, robotic};
    }
    [[nodiscard]] const ModuleInfo& info() const noexcept override { return info_; }
    [[nodiscard]] Duration estimate(const ActionRequest&) const override {
        return Duration::seconds(10.0);
    }
    [[nodiscard]] ActionResult execute(const ActionRequest& request) override {
        ++executions;
        if (fail_next) {
            fail_next = false;
            return ActionResult::failure("stub: simulated device failure");
        }
        json::Value data = json::Value::object();
        data.set("echo", request.args.get_or("payload", std::string("")));
        return ActionResult::success(std::move(data));
    }

    int executions = 0;
    bool fail_next = false;

private:
    ModuleInfo info_;
};

Workflow two_step_workflow() {
    return Workflow("wf_test", {
                                   {"first", "dev_a", "work", json::Value::object()},
                                   {"second", "dev_b", "work", json::Value::object()},
                               });
}

}  // namespace

// --------------------------------------------------------------- registry

TEST(ModuleRegistry, AddAndLookup) {
    ModuleRegistry registry;
    registry.add(std::make_shared<StubDevice>("dev_a"));
    EXPECT_TRUE(registry.contains("dev_a"));
    EXPECT_EQ(registry.get("dev_a").info().model, "Stub");
    EXPECT_THROW((void)registry.get("missing"), sdl::support::ConfigError);
    EXPECT_THROW(registry.add(std::make_shared<StubDevice>("dev_a")),
                 sdl::support::ConfigError);
}

// ------------------------------------------------------------ plate state

TEST(Plate, FillAndQueryWells) {
    Plate plate(1, 8, 12);
    EXPECT_EQ(plate.capacity(), 96);
    EXPECT_EQ(plate.next_free_well(), 0);
    WellContent content;
    content.true_color = {120, 120, 120};
    plate.fill(0, content);
    EXPECT_TRUE(plate.is_filled(0));
    EXPECT_EQ(plate.next_free_well(), 1);
    EXPECT_EQ(plate.filled_count(), 1);
    EXPECT_EQ(plate.content(0).true_color, (sdl::color::Rgb8{120, 120, 120}));
    EXPECT_THROW(plate.fill(0, content), sdl::support::LogicError);  // double fill
    EXPECT_THROW((void)plate.content(5), sdl::support::LogicError);  // empty read
    EXPECT_THROW((void)plate.is_filled(96), sdl::support::LogicError);
}

TEST(Plate, FullDetection) {
    Plate plate(1, 2, 3);
    WellContent content;
    for (int i = 0; i < 6; ++i) {
        EXPECT_FALSE(plate.full());
        plate.fill(i, content);
    }
    EXPECT_TRUE(plate.full());
    EXPECT_EQ(plate.next_free_well(), std::nullopt);
}

TEST(PlateRegistry, CreatesDistinctPlates) {
    PlateRegistry registry;
    const PlateId a = registry.create(8, 12);
    const PlateId b = registry.create(8, 12);
    EXPECT_NE(a, b);
    EXPECT_EQ(registry.count(), 2u);
    EXPECT_THROW((void)registry.get(999), sdl::support::Error);
}

TEST(LocationMap, PlaceTakeSemantics) {
    LocationMap map;
    map.add_location("a");
    map.add_location("b");
    EXPECT_EQ(map.peek("a"), std::nullopt);
    map.place("a", 7);
    EXPECT_EQ(map.peek("a"), 7);
    EXPECT_THROW(map.place("a", 8), sdl::support::Error);  // occupied
    EXPECT_EQ(map.take("a"), 7);
    EXPECT_THROW((void)map.take("a"), sdl::support::Error);  // empty
    EXPECT_THROW((void)map.peek("zz"), sdl::support::Error);  // unknown
    EXPECT_THROW(map.add_location("a"), sdl::support::ConfigError);
}

TEST(LocationMap, TrashSwallowsPlates) {
    LocationMap map;
    map.add_location(locations::kTrash);
    map.place(locations::kTrash, 1);
    map.place(locations::kTrash, 2);  // never occupied
    EXPECT_EQ(map.peek(locations::kTrash), std::nullopt);
}

// ---------------------------------------------------------------- configs

TEST(WorkcellConfig, ParsesRplWorkcellYaml) {
    const char* yaml_text = R"(# RPL color-picker workcell
name: rpl_workcell
modules:
  - name: sciclops
    model: Hudson SciClops
    interface: simulation
    config: {towers: 4}
  - name: pf400
    model: Precise PF400
  - name: ot2
    config:
      reservoirs: 4
  - name: barty
  - name: camera
locations:
  sciclops.exchange: [210.0, 30.0]
  camera.nest: [310.5, 20.0]
)";
    const WorkcellConfig wc = WorkcellConfig::from_yaml(yaml_text);
    EXPECT_EQ(wc.name(), "rpl_workcell");
    ASSERT_EQ(wc.modules().size(), 5u);
    EXPECT_TRUE(wc.has_module("barty"));
    EXPECT_EQ(wc.module("sciclops").model, "Hudson SciClops");
    EXPECT_EQ(wc.module("sciclops").config.at("towers").as_int(), 4);
    EXPECT_EQ(wc.module("pf400").interface, "simulation");
    ASSERT_EQ(wc.locations().size(), 2u);
    EXPECT_DOUBLE_EQ(wc.locations()[1].position[0], 310.5);
    EXPECT_FALSE(wc.describe().empty());
}

TEST(WorkcellConfig, YamlRoundTrip) {
    const char* yaml_text =
        "name: cell\nmodules:\n  - name: a\n    model: M\n  - name: b\n";
    const WorkcellConfig wc = WorkcellConfig::from_yaml(yaml_text);
    const WorkcellConfig round = WorkcellConfig::from_yaml(wc.to_yaml());
    EXPECT_EQ(round.name(), "cell");
    EXPECT_EQ(round.modules().size(), 2u);
    EXPECT_EQ(round.module("a").model, "M");
}

TEST(WorkcellConfig, RejectsMalformedDocuments) {
    // A bare scalar fails in the YAML layer (ParseError) — both parse and
    // config errors share the support::Error base.
    EXPECT_THROW(WorkcellConfig::from_yaml("just a scalar"), sdl::support::Error);
    EXPECT_THROW(WorkcellConfig::from_yaml("name: x\n"), sdl::support::ConfigError);
    EXPECT_THROW(WorkcellConfig::from_yaml("name: x\nmodules:\n  - model: no_name\n"),
                 sdl::support::ConfigError);
    EXPECT_THROW(
        WorkcellConfig::from_yaml("name: x\nmodules:\n  - name: a\n  - name: a\n"),
        sdl::support::ConfigError);
}

TEST(WorkflowDef, ParsesMixColorWorkflow) {
    const char* yaml_text = R"(name: cp_wf_mixcolor
steps:
  - name: plate to ot2
    module: pf400
    action: transfer
    args: {source: camera.nest, target: ot2.deck}
  - name: mix colors
    module: ot2
    action: run_protocol
    args: {protocol: mix_colors}
  - name: plate to camera
    module: pf400
    action: transfer
    args: {source: ot2.deck, target: camera.nest}
  - name: photograph
    module: camera
    action: take_picture
)";
    const Workflow wf = Workflow::from_yaml(yaml_text);
    EXPECT_EQ(wf.name(), "cp_wf_mixcolor");
    ASSERT_EQ(wf.steps().size(), 4u);
    EXPECT_EQ(wf.steps()[0].args.at("source").as_string(), "camera.nest");
    EXPECT_EQ(wf.steps()[3].module, "camera");
}

TEST(WorkflowDef, WithStepArgsMergesOverrides) {
    const Workflow wf("wf", {{"mix", "ot2", "run_protocol",
                              json::parse(R"({"protocol":"mix_colors"})")}});
    json::Value extra = json::Value::object();
    extra.set("dispenses", json::Value::array());
    const Workflow parameterized = wf.with_step_args("mix", extra);
    EXPECT_TRUE(parameterized.steps()[0].args.contains("dispenses"));
    EXPECT_EQ(parameterized.steps()[0].args.at("protocol").as_string(), "mix_colors");
    // The original is untouched (value semantics).
    EXPECT_FALSE(wf.steps()[0].args.contains("dispenses"));
    EXPECT_THROW((void)wf.with_step_args("nope", extra), sdl::support::ConfigError);
}

TEST(WorkflowDef, DotExportContainsSteps) {
    const Workflow wf = two_step_workflow();
    const std::string dot = wf.to_dot();
    EXPECT_NE(dot.find("dev_a.work"), std::string::npos);
    EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
}

TEST(WorkflowDef, YamlRoundTrip) {
    const Workflow wf = two_step_workflow();
    const Workflow round = Workflow::from_yaml(wf.to_yaml());
    EXPECT_EQ(round.name(), wf.name());
    ASSERT_EQ(round.steps().size(), wf.steps().size());
    EXPECT_EQ(round.steps()[1].module, "dev_b");
}

// ------------------------------------------------------------- transports

TEST(SimTransport, AdvancesVirtualTimeByEstimate) {
    Simulation sim;
    ModuleRegistry registry;
    registry.add(std::make_shared<StubDevice>("dev_a"));
    SimTransport transport(sim, registry);

    ActionRequest request;
    request.module = "dev_a";
    request.action = "work";
    const ActionResult result = transport.execute(request);
    EXPECT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result.duration.to_seconds(), 10.0);
    EXPECT_DOUBLE_EQ(transport.now().to_seconds(), 10.0);
}

TEST(SimTransport, BackgroundEventsInterleaveWithCommands) {
    Simulation sim;
    ModuleRegistry registry;
    registry.add(std::make_shared<StubDevice>("dev_a"));
    SimTransport transport(sim, registry);

    // A "publication" process scheduled mid-command must fire while the
    // command is in flight.
    double publish_fired_at = -1.0;
    sim.schedule_in(Duration::seconds(4.0),
                    [&] { publish_fired_at = sim.now().to_seconds(); });

    ActionRequest request;
    request.module = "dev_a";
    request.action = "work";
    (void)transport.execute(request);
    EXPECT_DOUBLE_EQ(publish_fired_at, 4.0);
}

TEST(SimTransport, WaitAdvancesClock) {
    Simulation sim;
    ModuleRegistry registry;
    registry.add(std::make_shared<StubDevice>("dev_a"));
    SimTransport transport(sim, registry);
    transport.wait(Duration::seconds(30));
    EXPECT_DOUBLE_EQ(transport.now().to_seconds(), 30.0);
}

TEST(ThreadTransport, ExecutesOnDeviceThreads) {
    ModuleRegistry registry;
    auto dev = std::make_shared<StubDevice>("dev_a");
    registry.add(dev);
    ThreadTransport transport(registry, 1e-6);

    ActionRequest request;
    request.module = "dev_a";
    request.action = "work";
    request.args.set("payload", "hello");
    const ActionResult result = transport.execute(request);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.data.at("echo").as_string(), "hello");
    EXPECT_EQ(dev->executions, 1);
    // Modeled time accumulated despite the microscopic wall time.
    EXPECT_DOUBLE_EQ(transport.now().to_seconds(), 10.0);
    EXPECT_THROW((void)transport.execute({"ghost", "work", json::Value::object(), 0}),
                 sdl::support::ConfigError);
}

// ----------------------------------------------------------------- faults

TEST(FaultInjector, RespectsPerModuleProbabilities) {
    FaultConfig config;
    config.command_rejection_prob = 0.0;
    config.per_module["flaky"] = 1.0;
    FaultInjector faults(config);
    ActionRequest flaky_request{"flaky", "work", json::Value::object(), 0};
    ActionRequest solid_request{"solid", "work", json::Value::object(), 0};
    EXPECT_TRUE(faults.should_reject(flaky_request));
    EXPECT_FALSE(faults.should_reject(solid_request));
    EXPECT_EQ(faults.rejections(), 1u);
    EXPECT_EQ(faults.rolls(), 2u);
}

TEST(FaultInjector, FrequencyMatchesProbability) {
    FaultConfig config;
    config.command_rejection_prob = 0.3;
    FaultInjector faults(config);
    ActionRequest request{"dev", "work", json::Value::object(), 0};
    int rejected = 0;
    for (int i = 0; i < 10000; ++i) rejected += faults.should_reject(request);
    EXPECT_NEAR(rejected / 10000.0, 0.3, 0.03);
}

// ----------------------------------------------------------------- engine

TEST(Engine, RunsAllStepsAndLogsTimings) {
    Simulation sim;
    ModuleRegistry registry;
    auto dev_a = std::make_shared<StubDevice>("dev_a");
    auto dev_b = std::make_shared<StubDevice>("dev_b");
    registry.add(dev_a);
    registry.add(dev_b);
    SimTransport transport(sim, registry);
    EventLog log;
    WorkflowEngine engine(transport, registry, log);

    const WorkflowRunStats stats = engine.run(two_step_workflow());
    EXPECT_EQ(stats.steps_completed, 2);
    EXPECT_EQ(stats.rejections, 0);
    EXPECT_DOUBLE_EQ(stats.duration.to_seconds(), 20.0);
    EXPECT_EQ(dev_a->executions, 1);
    EXPECT_EQ(dev_b->executions, 1);

    ASSERT_EQ(log.steps().size(), 2u);
    EXPECT_DOUBLE_EQ(log.steps()[0].start.to_seconds(), 0.0);
    EXPECT_DOUBLE_EQ(log.steps()[0].end.to_seconds(), 10.0);
    EXPECT_DOUBLE_EQ(log.steps()[1].start.to_seconds(), 10.0);
    ASSERT_EQ(log.workflows().size(), 1u);
    EXPECT_TRUE(log.workflows()[0].completed);
    EXPECT_EQ(log.successful_commands(), 2u);
}

TEST(Engine, RetriesRejectedCommandsUntilSuccess) {
    Simulation sim;
    ModuleRegistry registry;
    auto dev = std::make_shared<StubDevice>("dev_a");
    registry.add(dev);
    FaultConfig fault_config;
    fault_config.command_rejection_prob = 0.5;
    fault_config.seed = 11;
    FaultInjector faults(fault_config);
    SimTransport transport(sim, registry, &faults);
    EventLog log;
    RetryPolicy policy;
    policy.max_attempts = 100;
    policy.backoff = Duration::seconds(1.0);
    WorkflowEngine engine(transport, registry, log, policy);

    const Workflow wf("wf_flaky", {{"only", "dev_a", "work", json::Value::object()}});
    const WorkflowRunStats stats = engine.run(wf);
    EXPECT_EQ(stats.steps_completed, 1);
    EXPECT_EQ(dev->executions, 1);  // executed exactly once despite rejections
    // Every rejected attempt is logged with its own attempt number.
    EXPECT_EQ(log.steps().size(), 1u + static_cast<std::size_t>(stats.rejections));
    EXPECT_EQ(log.successful_commands(), 1u);
}

TEST(Engine, DeviceFailureAbortsWorkflow) {
    Simulation sim;
    ModuleRegistry registry;
    auto dev = std::make_shared<StubDevice>("dev_a");
    dev->fail_next = true;
    registry.add(dev);
    SimTransport transport(sim, registry);
    EventLog log;
    WorkflowEngine engine(transport, registry, log);

    const Workflow wf("wf_fail", {{"only", "dev_a", "work", json::Value::object()}});
    EXPECT_THROW(engine.run(wf), WorkflowError);
    ASSERT_EQ(log.workflows().size(), 1u);
    EXPECT_FALSE(log.workflows()[0].completed);
}

TEST(Engine, ExhaustedRetriesEscalateToHuman) {
    Simulation sim;
    ModuleRegistry registry;
    registry.add(std::make_shared<StubDevice>("dev_a"));
    FaultConfig fault_config;
    fault_config.per_module["dev_a"] = 0.9;
    fault_config.seed = 4;
    FaultInjector faults(fault_config);
    SimTransport transport(sim, registry, &faults);
    EventLog log;
    RetryPolicy policy;
    policy.max_attempts = 2;
    policy.human_rescue = true;
    WorkflowEngine engine(transport, registry, log, policy);

    const Workflow wf("wf_bad", {{"only", "dev_a", "work", json::Value::object()}});
    const WorkflowRunStats stats = engine.run(wf);  // must terminate eventually
    EXPECT_EQ(stats.steps_completed, 1);
    EXPECT_GE(stats.interventions, 1);
    EXPECT_EQ(log.interventions().size(), static_cast<std::size_t>(stats.interventions));
}

TEST(Engine, NoHumanRescueThrowsAfterMaxAttempts) {
    Simulation sim;
    ModuleRegistry registry;
    registry.add(std::make_shared<StubDevice>("dev_a"));
    FaultConfig fault_config;
    fault_config.per_module["dev_a"] = 1.0;  // always rejected
    FaultInjector faults(fault_config);
    SimTransport transport(sim, registry, &faults);
    EventLog log;
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.human_rescue = false;
    WorkflowEngine engine(transport, registry, log, policy);

    const Workflow wf("wf_doomed", {{"only", "dev_a", "work", json::Value::object()}});
    EXPECT_THROW(engine.run(wf), WorkflowError);
    EXPECT_EQ(log.steps().size(), 3u);  // three rejected attempts logged
}

TEST(Engine, BackoffAddsWaitTimeBetweenRetries) {
    Simulation sim;
    ModuleRegistry registry;
    registry.add(std::make_shared<StubDevice>("dev_a"));
    FaultConfig fault_config;
    fault_config.per_module["dev_a"] = 1.0;  // always rejected
    fault_config.rejection_latency = Duration::seconds(5.0);
    FaultInjector faults(fault_config);
    SimTransport transport(sim, registry, &faults);
    EventLog log;
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.backoff = Duration::seconds(7.0);
    policy.human_rescue = false;
    WorkflowEngine engine(transport, registry, log, policy);

    const Workflow wf("wf_backoff", {{"only", "dev_a", "work", json::Value::object()}});
    EXPECT_THROW(engine.run(wf), WorkflowError);
    // 3 attempts x 5 s rejection latency + 3 x 7 s backoff = 36 s.
    EXPECT_DOUBLE_EQ(transport.now().to_seconds(), 36.0);
}

TEST(Engine, ResultsCollectedInStepOrder) {
    Simulation sim;
    ModuleRegistry registry;
    registry.add(std::make_shared<StubDevice>("dev_a"));
    registry.add(std::make_shared<StubDevice>("dev_b"));
    SimTransport transport(sim, registry);
    EventLog log;
    WorkflowEngine engine(transport, registry, log);

    Workflow wf("wf_payloads",
                {{"first", "dev_a", "work", json::parse(R"({"payload":"one"})")},
                 {"second", "dev_b", "work", json::parse(R"({"payload":"two"})")}});
    const WorkflowRunStats stats = engine.run(wf);
    ASSERT_EQ(stats.results.size(), 2u);
    EXPECT_EQ(stats.results[0].data.at("echo").as_string(), "one");
    EXPECT_EQ(stats.results[1].data.at("echo").as_string(), "two");
}

TEST(ThreadTransport, RejectionsPropagateThroughChannels) {
    ModuleRegistry registry;
    registry.add(std::make_shared<StubDevice>("dev_a"));
    FaultConfig fault_config;
    fault_config.per_module["dev_a"] = 1.0;
    fault_config.rejection_latency = Duration::seconds(2.0);
    FaultInjector faults(fault_config);
    ThreadTransport transport(registry, 1e-6, &faults);

    ActionRequest request{"dev_a", "work", json::Value::object(), 0};
    const ActionResult result = transport.execute(request);
    EXPECT_EQ(result.status, ActionStatus::Rejected);
    EXPECT_DOUBLE_EQ(result.duration.to_seconds(), 2.0);
}

// -------------------------------------------------------------- event log

TEST(EventLog, ModuleBusyTimeAndBounds) {
    EventLog log;
    auto step = [](const char* module, double start, double end, ActionStatus status) {
        StepRecord r;
        r.workflow = "wf";
        r.step = "s";
        r.module = module;
        r.action = "a";
        r.start = sdl::support::TimePoint::from_seconds(start);
        r.end = sdl::support::TimePoint::from_seconds(end);
        r.status = status;
        return r;
    };
    log.record_step(step("ot2", 0, 145, ActionStatus::Succeeded));
    log.record_step(step("pf400", 145, 188, ActionStatus::Succeeded));
    log.record_step(step("pf400", 188, 193, ActionStatus::Rejected));
    log.record_step(step("pf400", 193, 236, ActionStatus::Succeeded));

    EXPECT_DOUBLE_EQ(log.module_busy_time("ot2").to_seconds(), 145.0);
    EXPECT_DOUBLE_EQ(log.module_busy_time("pf400").to_seconds(), 86.0);
    EXPECT_EQ(log.successful_commands(), 3u);
    EXPECT_DOUBLE_EQ(log.first_start().to_seconds(), 0.0);
    EXPECT_DOUBLE_EQ(log.last_end().to_seconds(), 236.0);
}

TEST(EventLog, NonRoboticStepsExcludedFromCommandCount) {
    EventLog log;
    StepRecord camera_step;
    camera_step.module = "camera";
    camera_step.robotic = false;
    camera_step.status = ActionStatus::Succeeded;
    log.record_step(camera_step);
    EXPECT_EQ(log.successful_commands(), 0u);
}

TEST(EventLog, JsonExportHasWorkflowRuns) {
    EventLog log;
    StepRecord r;
    r.workflow = "cp_wf_mixcolor";
    r.step = "mix";
    r.module = "ot2";
    r.action = "run_protocol";
    r.start = sdl::support::TimePoint::from_seconds(5);
    r.end = sdl::support::TimePoint::from_seconds(150);
    log.record_step(r);
    log.record_workflow({"cp_wf_mixcolor", sdl::support::TimePoint::from_seconds(0),
                         sdl::support::TimePoint::from_seconds(200), true});

    const json::Value doc = log.to_json();
    const json::Value& runs = doc.at("workflow_runs");
    ASSERT_EQ(runs.as_array().size(), 1u);
    EXPECT_EQ(runs.as_array()[0].at("name").as_string(), "cp_wf_mixcolor");
    const json::Value& steps = runs.as_array()[0].at("steps");
    ASSERT_EQ(steps.as_array().size(), 1u);
    EXPECT_DOUBLE_EQ(steps.as_array()[0].at("duration_s").as_double(), 145.0);
}
