// Tests for the YAML-subset parser against WEI-style config documents.
#include <gtest/gtest.h>

#include "support/common.hpp"
#include "support/yaml.hpp"

namespace yaml = sdl::support::yaml;
namespace json = sdl::support::json;
using sdl::support::ParseError;

TEST(Yaml, ParsesSimpleMapping) {
    const json::Value v = yaml::parse("name: rpl_workcell\nversion: 2\nactive: true\n");
    EXPECT_EQ(v.at("name").as_string(), "rpl_workcell");
    EXPECT_EQ(v.at("version").as_int(), 2);
    EXPECT_TRUE(v.at("active").as_bool());
}

TEST(Yaml, ParsesNestedMapping) {
    const json::Value v = yaml::parse(
        "config:\n"
        "  towers: 4\n"
        "  exchange:\n"
        "    x: 10.5\n"
        "    y: -3.0\n");
    EXPECT_EQ(v.at("config").at("towers").as_int(), 4);
    EXPECT_DOUBLE_EQ(v.at("config").at("exchange").at("x").as_double(), 10.5);
    EXPECT_DOUBLE_EQ(v.at("config").at("exchange").at("y").as_double(), -3.0);
}

TEST(Yaml, ParsesBlockSequence) {
    const json::Value v = yaml::parse("- alpha\n- 2\n- true\n- 3.5\n");
    const auto& arr = v.as_array();
    ASSERT_EQ(arr.size(), 4u);
    EXPECT_EQ(arr[0].as_string(), "alpha");
    EXPECT_EQ(arr[1].as_int(), 2);
    EXPECT_TRUE(arr[2].as_bool());
    EXPECT_DOUBLE_EQ(arr[3].as_double(), 3.5);
}

TEST(Yaml, ParsesSequenceOfMappings) {
    // The shape of a WEI workflow's step list.
    const json::Value v = yaml::parse(
        "steps:\n"
        "  - module: pf400\n"
        "    action: transfer\n"
        "    args: {source: camera, target: ot2}\n"
        "  - module: ot2\n"
        "    action: run_protocol\n"
        "    args:\n"
        "      protocol: mix_colors\n");
    const auto& steps = v.at("steps").as_array();
    ASSERT_EQ(steps.size(), 2u);
    EXPECT_EQ(steps[0].at("module").as_string(), "pf400");
    EXPECT_EQ(steps[0].at("args").at("source").as_string(), "camera");
    EXPECT_EQ(steps[1].at("args").at("protocol").as_string(), "mix_colors");
}

TEST(Yaml, SequenceAtSameIndentAsKey) {
    const json::Value v = yaml::parse(
        "modules:\n"
        "- name: sciclops\n"
        "- name: pf400\n");
    ASSERT_EQ(v.at("modules").as_array().size(), 2u);
    EXPECT_EQ(v.at("modules").as_array()[1].at("name").as_string(), "pf400");
}

TEST(Yaml, FlowStyles) {
    const json::Value v = yaml::parse(
        "position: [310.0, 20.0, 45]\n"
        "meta: {id: 7, label: \"plate nest\", nested: [1, 2]}\n");
    EXPECT_EQ(v.at("position").as_array().size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("position").as_array()[0].as_double(), 310.0);
    EXPECT_EQ(v.at("meta").at("id").as_int(), 7);
    EXPECT_EQ(v.at("meta").at("label").as_string(), "plate nest");
    EXPECT_EQ(v.at("meta").at("nested").as_array()[1].as_int(), 2);
}

TEST(Yaml, CommentsAndBlankLines) {
    const json::Value v = yaml::parse(
        "# workcell definition\n"
        "\n"
        "name: rpl   # the Rapid Prototyping Lab\n"
        "\n"
        "count: 10\n");
    EXPECT_EQ(v.at("name").as_string(), "rpl");
    EXPECT_EQ(v.at("count").as_int(), 10);
}

TEST(Yaml, HashInsideQuotesIsNotAComment) {
    const json::Value v = yaml::parse("color: \"#787878\"\n");
    EXPECT_EQ(v.at("color").as_string(), "#787878");
}

TEST(Yaml, QuotedStrings) {
    const json::Value v = yaml::parse(
        "single: 'it''s quoted'\n"
        "double: \"tab\\there\"\n"
        "plain: just words with spaces\n");
    EXPECT_EQ(v.at("single").as_string(), "it's quoted");
    EXPECT_EQ(v.at("double").as_string(), "tab\there");
    EXPECT_EQ(v.at("plain").as_string(), "just words with spaces");
}

TEST(Yaml, NullValues) {
    const json::Value v = yaml::parse("a: ~\nb: null\nc:\nd: 1\n");
    EXPECT_TRUE(v.at("a").is_null());
    EXPECT_TRUE(v.at("b").is_null());
    EXPECT_TRUE(v.at("c").is_null());
    EXPECT_EQ(v.at("d").as_int(), 1);
}

TEST(Yaml, EmptyDocumentIsNull) {
    EXPECT_TRUE(yaml::parse("").is_null());
    EXPECT_TRUE(yaml::parse("# only a comment\n").is_null());
}

TEST(Yaml, DocumentStartMarkerIgnored) {
    const json::Value v = yaml::parse("---\nkey: value\n");
    EXPECT_EQ(v.at("key").as_string(), "value");
}

TEST(Yaml, NestedSequencesViaDashOnOwnLine) {
    const json::Value v = yaml::parse(
        "-\n"
        "  - 1\n"
        "  - 2\n"
        "-\n"
        "  - 3\n");
    const auto& arr = v.as_array();
    ASSERT_EQ(arr.size(), 2u);
    EXPECT_EQ(arr[0].as_array()[1].as_int(), 2);
    EXPECT_EQ(arr[1].as_array()[0].as_int(), 3);
}

TEST(Yaml, RejectsTabs) {
    EXPECT_THROW(yaml::parse("a:\n\tb: 1\n"), ParseError);
}

TEST(Yaml, RejectsDuplicateKeys) {
    EXPECT_THROW(yaml::parse("a: 1\na: 2\n"), ParseError);
}

TEST(Yaml, RejectsUnsupportedFeatures) {
    EXPECT_THROW(yaml::parse("a: &anchor 1\n"), ParseError);
    EXPECT_THROW(yaml::parse("a: *ref\n"), ParseError);
    EXPECT_THROW(yaml::parse("a: !tag x\n"), ParseError);
    EXPECT_THROW(yaml::parse("a: |\n  block\n"), ParseError);
}

TEST(Yaml, RejectsBadIndentation) {
    EXPECT_THROW(yaml::parse("a: 1\n   stray\n"), ParseError);
}

TEST(Yaml, NegativeAndScientificNumbers) {
    const json::Value v = yaml::parse("a: -12\nb: -1.5e-3\nc: +3\n");
    EXPECT_EQ(v.at("a").as_int(), -12);
    EXPECT_DOUBLE_EQ(v.at("b").as_double(), -0.0015);
    EXPECT_EQ(v.at("c").as_int(), 3);
}

TEST(Yaml, PlainScalarsWithInnerColonStayStrings) {
    // A colon not followed by space does not split a key.
    const json::Value v = yaml::parse("url: https://acdc.alcf.anl.gov\n");
    EXPECT_EQ(v.at("url").as_string(), "https://acdc.alcf.anl.gov");
}

TEST(Yaml, DumpParsesBackToSameDocument) {
    const char* doc =
        "name: color_picker\n"
        "modules:\n"
        "  - name: sciclops\n"
        "    actions: [get_plate, status]\n"
        "  - name: ot2\n"
        "    config:\n"
        "      reservoirs: 4\n"
        "target: [120, 120, 120]\n"
        "threshold: 5.5\n";
    const json::Value v = yaml::parse(doc);
    const json::Value round = yaml::parse(yaml::dump(v));
    EXPECT_EQ(round, v);
}

// Property sweep: dump/parse round-trips across varied document shapes.
class YamlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(YamlRoundTrip, DumpThenParseIsIdentity) {
    const json::Value v = yaml::parse(GetParam());
    EXPECT_EQ(yaml::parse(yaml::dump(v)), v);
}

INSTANTIATE_TEST_SUITE_P(
    Docs, YamlRoundTrip,
    ::testing::Values("a: 1\n",                                      //
                      "- 1\n- 2\n",                                  //
                      "a:\n  b:\n    c: deep\n",                     //
                      "list:\n  - x: 1\n    y: [1, 2, {z: 3}]\n",    //
                      "s: \"needs: quoting\"\n",                     //
                      "empty_map: {}\nempty_list: []\n",             //
                      "mixed:\n  - plain\n  - 3.25\n  - false\n"));
