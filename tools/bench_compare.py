#!/usr/bin/env python3
"""Compare a BENCH_hotpath.json run against a committed baseline.

Walks both documents, pairs numeric leaves by their JSON path, infers the
improvement direction from the metric name (``*_ns``/``*_seconds`` lower
is better; ``*_per_sec``/``speedup*`` higher is better; anything else is
informational only), and reports the relative regression of each paired
metric. Exits non-zero when any metric regresses by more than
``--tolerance`` percent, unless ``--warn-only`` is given.

Usage:
  tools/bench_compare.py --baseline bench/baselines/BENCH_hotpath.baseline.json \
      --current BENCH_hotpath.json [--tolerance 25] [--warn-only]

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def numeric_leaves(node, path=""):
    """Yields (path, value) for every numeric leaf; list items are keyed
    by a stable label (scenario / n+candidates) when present, falling
    back to the index. ``null`` leaves are yielded as ``None`` so the
    caller can reject a gated metric that lost its value instead of
    silently dropping it from the comparison."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from numeric_leaves(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            label = str(index)
            if isinstance(item, dict):
                if "scenario" in item:
                    label = str(item["scenario"])
                elif "n" in item and "candidates" in item:
                    label = f"n{item['n']}_c{item['candidates']}"
            yield from numeric_leaves(item, f"{path}[{label}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)
    elif node is None:
        yield path, None


def direction(path):
    """'lower' / 'higher' is better, or None for informational metrics."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf.endswith(("_ns", "_seconds", "_s")) or "_ns_" in leaf:
        return "lower"
    if leaf.endswith("_per_sec") or leaf.startswith("speedup") or "_speedup" in leaf:
        return "higher"
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly produced JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=25.0,
        help="max tolerated regression in percent (default: 25)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (noisy runners)",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="SUBSTR",
        help=(
            "compare only metrics whose path contains SUBSTR (e.g. "
            "'speedup' to gate on hardware-portable ratios only)"
        ),
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="SUBSTR",
        help=(
            "skip metrics whose path contains SUBSTR (repeatable; e.g. a "
            "noise-bound ratio with too little margin for a hard gate)"
        ),
    )
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as f:
        baseline = dict(numeric_leaves(json.load(f)))
    with open(args.current, encoding="utf-8") as f:
        current = dict(numeric_leaves(json.load(f)))

    def in_scope(path):
        if direction(path) is None:
            return False
        if args.only is not None and args.only not in path:
            return False
        return not any(sub in path for sub in args.exclude)

    # A gated metric that is null, NaN, or infinite cannot be compared
    # — and every float comparison against NaN is False, so without this
    # check a NaN run would sail through the gate. Name each bad metric
    # and fail instead.
    invalid = []
    for doc_name, doc in (("baseline", baseline), ("current", current)):
        for path in sorted(doc):
            value = doc[path]
            if in_scope(path) and (value is None or not math.isfinite(value)):
                invalid.append((doc_name, path, value))
    bad_paths = {path for _, path, _ in invalid}

    regressions = []
    improvements = 0
    compared = 0
    for path, base_value in sorted(baseline.items()):
        sense = direction(path)
        if (not in_scope(path) or path in bad_paths or path not in current
                or base_value == 0):
            continue
        compared += 1
        cur_value = current[path]
        if sense == "lower":
            delta_pct = (cur_value - base_value) / base_value * 100.0
        else:
            delta_pct = (base_value - cur_value) / base_value * 100.0
        if delta_pct > args.tolerance:
            regressions.append((path, base_value, cur_value, delta_pct))
        elif delta_pct < 0:
            improvements += 1

    missing = sorted(p for p in baseline if in_scope(p) and p not in current)
    added = sorted(p for p in current if in_scope(p) and p not in baseline)

    print(
        f"bench_compare: {compared} metrics compared, "
        f"{improvements} improved, {len(regressions)} regressed "
        f"beyond {args.tolerance:.0f}%"
    )
    for doc_name, path, value in invalid:
        shown = "null" if value is None else repr(value)
        print(f"  INVALID {doc_name} value for {path}: {shown} "
              "(gated metrics must be finite numbers)")
    for path in missing:
        print(f"  warning: metric disappeared: {path}")
    for path in added:
        print(f"  note: new metric (no baseline): {path}")
    for path, base_value, cur_value, delta_pct in regressions:
        print(
            f"  REGRESSION {path}: baseline {base_value:.4g} -> "
            f"current {cur_value:.4g}  ({delta_pct:+.1f}%)"
        )

    if not args.warn_only:
        if invalid:
            print("bench_compare: FAIL — gated metrics with null/NaN/inf "
                  "values (see INVALID lines above)")
            return 1
        # A gate that compares nothing gates nothing: schema renames,
        # an empty/partial current file, or a typoed --only must fail
        # loudly instead of passing vacuously.
        if compared == 0:
            print("bench_compare: FAIL — no metrics were compared "
                  "(schema mismatch, empty run, or bad --only filter?)")
            return 1
        if missing:
            print("bench_compare: FAIL — baseline metrics missing from the "
                  "current run (refresh the baseline if the schema changed "
                  "intentionally)")
            return 1
        if regressions:
            print(
                "bench_compare: FAIL — refresh the baseline intentionally "
                "(docs/BENCHMARKS.md) or fix the regression."
            )
            return 1
    if regressions or missing or invalid:
        print("bench_compare: problems reported as warnings (--warn-only)")
    else:
        print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
