#!/usr/bin/env python3
"""Checks that local markdown links resolve to real files.

    python3 tools/check_markdown_links.py README.md docs

Arguments are markdown files or directories (scanned recursively for
*.md). For every inline link or image ``[text](target)`` whose target is
not external (http/https/mailto) or a pure intra-page anchor, the target
path — resolved relative to the containing file, with any #anchor
stripped — must exist. Exits 0 when every link resolves, 1 with one line
per broken link otherwise.

Stdlib only: runs anywhere CI has a Python 3, no pip install needed.
Used by the docs-and-specs CI job (.github/workflows/ci.yml) so README
and docs/ cross-references can't silently rot.
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions ("[id]: target") are rare here and intentionally ignored.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files(args):
    for arg in args:
        path = Path(arg)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.is_file():
            yield path
        else:
            raise FileNotFoundError(f"no such file or directory: {arg}")


def check_file(md: Path):
    broken = []
    text = md.read_text(encoding="utf-8")
    # Drop fenced code blocks: their bracketed text is code, not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (md.parent / relative).exists():
            broken.append((target, md))
    return broken


def main(argv):
    if len(argv) < 2:
        print("usage: check_markdown_links.py <file-or-dir>...", file=sys.stderr)
        return 2
    files = list(markdown_files(argv[1:]))
    if not files:
        print("check_markdown_links: no markdown files found", file=sys.stderr)
        return 2
    broken = []
    for md in files:
        broken.extend(check_file(md))
    for target, md in broken:
        print(f"BROKEN  {md}: ({target})")
    print(f"check_markdown_links: {len(files)} file(s), {len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
