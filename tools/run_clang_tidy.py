#!/usr/bin/env python3
"""Run the repo's clang-tidy gate over compile_commands.json.

Thin, stdlib-only driver for the CI lint job (and local use where
clang-tidy is installed): reads the compilation database, keeps the
first-party translation units (src/, tools/, bench/ — minus the frozen
bench/prepr_reference.* yardstick), and runs clang-tidy with the
repo-root .clang-tidy config (WarningsAsErrors: '*', so any diagnostic
fails the gate).

Usage:
    tools/run_clang_tidy.py [-p BUILD_DIR] [-j N] [--clang-tidy BIN] [files...]

With explicit [files...] only those TUs run (fast pre-push loop);
otherwise every first-party TU in the database runs. Exit codes:
0 clean, 1 diagnostics, 2 missing tool/database.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

FIRST_PARTY_PREFIXES = ("src/", "tools/", "bench/")
EXCLUDE_PREFIXES = ("bench/prepr_reference",)


def first_party_sources(database_path, repo_root):
    with open(database_path, encoding="utf-8") as fh:
        entries = json.load(fh)
    sources = []
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
        if not rel.startswith(FIRST_PARTY_PREFIXES):
            continue  # tests, gtest, example scratch — out of the gate
        if rel.startswith(EXCLUDE_PREFIXES):
            continue  # frozen PR-5 perf yardstick; must not be modernized
        sources.append(path)
    return sorted(set(sources))


def main(argv=None):
    parser = argparse.ArgumentParser(prog="run_clang_tidy")
    parser.add_argument("-p", "--build-dir", default="build",
                        help="directory holding compile_commands.json")
    parser.add_argument("-j", "--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to use")
    parser.add_argument("files", nargs="*",
                        help="restrict the run to these source files")
    args = parser.parse_args(argv)

    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        print(f"run_clang_tidy: '{args.clang_tidy}' not found on PATH; "
              f"install clang-tidy or pass --clang-tidy", file=sys.stderr)
        return 2

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    database = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.isfile(database):
        print(f"run_clang_tidy: no {database}; configure with "
              f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 2

    if args.files:
        sources = [os.path.abspath(f) for f in args.files]
    else:
        sources = first_party_sources(database, repo_root)
    if not sources:
        print("run_clang_tidy: no first-party sources in the database",
              file=sys.stderr)
        return 2

    print(f"run_clang_tidy: {len(sources)} TU(s), {args.jobs} job(s)")
    failures = 0
    # Simple bounded fan-out: chunk the list rather than pulling in a
    # worker-pool dependency; clang-tidy is the bottleneck, not Python.
    running = []
    queue = list(sources)
    while queue or running:
        while queue and len(running) < args.jobs:
            src = queue.pop(0)
            running.append((src, subprocess.Popen(
                [tidy, "-p", args.build_dir, "--quiet", src],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True)))
        src, proc = running.pop(0)
        output, _ = proc.communicate()
        if proc.returncode != 0:
            failures += 1
            rel = os.path.relpath(src, repo_root)
            print(f"--- {rel} ---\n{output}", end="")
    if failures:
        print(f"run_clang_tidy: {failures} TU(s) with diagnostics",
              file=sys.stderr)
        return 1
    print("run_clang_tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
