// sdlbench_fleet — work-stealing multi-process campaign orchestrator.
//
//   sdlbench_fleet --campaign <campaign.yaml> [output_dir] [--workers N]
//
// Runs one campaign grid across N worker processes (re-exec'd copies of
// this binary in --worker mode) with dynamic work-stealing leases instead
// of static shards: the coordinator expands the grid once, orders cells
// longest-expected-first (campaign/cost_model.hpp), and leases slices of
// that order to workers over a line protocol on their stdin/stdout pipes.
// Leases shrink adaptively as the queue drains, so fast workers steal
// what slow ones would otherwise strand; a worker that dies (pipe EOF) or
// hangs (heartbeat timeout) is SIGKILLed and its incomplete cells are
// re-leased, while everything it journaled durably — acknowledged or not
// — is salvaged, never recomputed. Worker journals are tailed as acks
// arrive and merged continuously, so campaign.json/campaign.csv in
// output_dir are live during the run; the final report is written from
// index-sorted results and is byte-identical to a single-process
// uninterrupted `sdlbench_run --campaign` run, even when workers were
// killed mid-campaign. See docs/ARCHITECTURE.md § Fleet execution.
//
// Prefer this over manual `sdlbench_run --shard i/N` + sdlbench_merge on
// one machine: shards are static (a skewed grid strands work on one
// shard), the fleet rebalances.
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/fleet.hpp"
#include "linalg/backend.hpp"
#include "support/failpoint.hpp"
#include "support/log.hpp"

using namespace sdl;

namespace {

#ifndef SDLBENCH_VERSION
#define SDLBENCH_VERSION "unknown"
#endif
constexpr const char* kVersion = SDLBENCH_VERSION;

void print_usage(std::FILE* stream) {
    std::fprintf(
        stream,
        "sdlbench_fleet — work-stealing multi-process campaign orchestrator\n"
        "\n"
        "usage: sdlbench_fleet --campaign <campaign.yaml> [output_dir] [options]\n"
        "\n"
        "options:\n"
        "  -h, --help               show this help and exit\n"
        "  --version                print version and exit\n"
        "  --campaign <file>        the campaign grid to run (required)\n"
        "  --workers <n>            worker processes (default 3, capped at the\n"
        "                           cell count)\n"
        "  --worker-threads <n>     in-process pool size per worker (sets\n"
        "                           SDLBENCH_WORKERS in the worker's env);\n"
        "                           default: hardware threads / workers\n"
        "  --heartbeat-timeout <s>  declare a silent worker hung after this many\n"
        "                           seconds, SIGKILL it, and re-lease its\n"
        "                           incomplete cells (default 30)\n"
        "  --merge-every <n>        rewrite campaign.json/csv after every n\n"
        "                           completed cells (default 1: fully live)\n"
        "  --max-lease <n>          cap cells per lease (default adaptive:\n"
        "                           ceil(pending / (2 x workers)))\n"
        "  --backend <name>         linalg backend override (strict | fast),\n"
        "                           applied on both sides of the digest\n"
        "  --resume                 restart a killed coordinator from output_dir's\n"
        "                           coordinator.jsonl ledger + worker journals\n"
        "  --quarantine-after <k>   quarantine a cell after it crashes k distinct\n"
        "                           worker incarnations (default 3); quarantined\n"
        "                           cells are reported in campaign.json and the\n"
        "                           fleet exits 6\n"
        "  --max-respawns <n>       per-slot respawn budget (default 8); a slot\n"
        "                           that exhausts it is retired\n"
        "  --respawn-backoff <s>    base respawn delay, doubled per consecutive\n"
        "                           crash up to a 5s cap (default 0.25)\n"
        "  --failpoints <spec>      arm coordinator-side failpoints (overrides\n"
        "                           SDLBENCH_FAILPOINTS); docs/ROBUSTNESS.md has\n"
        "                           the grammar and site catalog\n"
        "  --worker-failpoints <w|*>:<spec>\n"
        "                           inject <spec> into worker slot w (generation\n"
        "                           0 only) or '*' (every incarnation); repeatable\n"
        "  --chaos-kill <w>:<k>     sugar for --worker-failpoints\n"
        "                           w:worker.pre_ack_kill=kill@k#1\n"
        "\n"
        "Writes campaign.json, campaign.csv and a fused whole-grid cells.jsonl\n"
        "to [output_dir] (default sdlbench_fleet_out); per-worker journals\n"
        "remain under output_dir/workers/wN/ (respawns under wNrG/). The final\n"
        "report is byte-identical to a single-process `sdlbench_run --campaign`\n"
        "run, including when workers are killed mid-campaign or the coordinator\n"
        "itself is killed and resumed. Exits 6 if any cell was quarantined.\n");
}

bool parse_size(const std::string& text, std::size_t& into) {
    if (text.empty() || text.size() > 9) return false;
    std::size_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') return false;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    into = value;
    return true;
}

bool parse_double(const std::string& text, double& into) {
    try {
        std::size_t used = 0;
        into = std::stod(text, &used);
        return used == text.size() && into > 0.0;
    } catch (...) {
        return false;
    }
}

int worker_main(const std::vector<std::string>& args) {
    campaign::FleetWorkerOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const auto value = [&]() -> std::string {
            return i + 1 < args.size() ? args[++i] : std::string();
        };
        if (args[i] == "--worker") continue;
        if (args[i] == "--campaign") {
            options.campaign_path = value();
        } else if (args[i] == "--dir") {
            options.dir = value();
        } else if (args[i] == "--expect-digest") {
            options.expect_digest = value();
        } else if (args[i] == "--backend") {
            options.backend = value();
        } else if (args[i] == "--heartbeat-interval") {
            if (!parse_double(value(), options.heartbeat_interval_s)) {
                std::fprintf(stderr, "fleet worker: bad --heartbeat-interval\n");
                return 2;
            }
        } else {
            std::fprintf(stderr, "fleet worker: unknown flag '%s'\n", args[i].c_str());
            return 2;
        }
    }
    if (options.campaign_path.empty() || options.dir.empty()) {
        std::fprintf(stderr, "fleet worker: --campaign and --dir are required\n");
        return 2;
    }
    try {
        return campaign::run_fleet_worker(options);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fleet worker: %s\n", e.what());
        return 1;
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    // Arm from SDLBENCH_FAILPOINTS first: workers get their schedules
    // this way (the coordinator always sets the variable for them), and
    // a coordinator run under the env var behaves like --failpoints.
    try {
        support::failpoint::arm_from_env();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: SDLBENCH_FAILPOINTS: %s\n", e.what());
        return 2;
    }
    for (const auto& a : args) {
        if (a == "--worker") return worker_main(args);
    }
    for (const auto& a : args) {
        if (a == "-h" || a == "--help") {
            print_usage(stdout);
            return 0;
        }
        if (a == "--version") {
            std::printf("sdlbench_fleet %s\n", kVersion);
            return 0;
        }
    }

    campaign::FleetOptions options;
    options.worker_exe = argv[0];  // workers are re-exec'd copies of this binary
    std::string campaign_path;
    std::string out_dir = "sdlbench_fleet_out";
    bool have_out_dir = false;
    for (auto it = args.begin(); it != args.end();) {
        const auto take_value = [&](const char* flag, std::string& into) {
            if (std::next(it) == args.end()) {
                std::fprintf(stderr, "error: %s requires a value\n", flag);
                return false;
            }
            into = *std::next(it);
            it = args.erase(it, std::next(it, 2));
            return true;
        };
        std::string text;
        if (*it == "--campaign") {
            if (!take_value("--campaign", campaign_path)) return 2;
        } else if (*it == "--backend") {
            if (!take_value("--backend", options.backend)) return 2;
        } else if (*it == "--workers") {
            if (!take_value("--workers", text)) return 2;
            if (!parse_size(text, options.workers) || options.workers == 0) {
                std::fprintf(stderr, "error: --workers needs a positive integer\n");
                return 2;
            }
        } else if (*it == "--worker-threads") {
            if (!take_value("--worker-threads", text)) return 2;
            if (!parse_size(text, options.worker_threads)) {
                std::fprintf(stderr, "error: --worker-threads needs an integer\n");
                return 2;
            }
        } else if (*it == "--merge-every") {
            if (!take_value("--merge-every", text)) return 2;
            if (!parse_size(text, options.merge_every) || options.merge_every == 0) {
                std::fprintf(stderr, "error: --merge-every needs a positive integer\n");
                return 2;
            }
        } else if (*it == "--max-lease") {
            if (!take_value("--max-lease", text)) return 2;
            if (!parse_size(text, options.max_lease)) {
                std::fprintf(stderr, "error: --max-lease needs an integer\n");
                return 2;
            }
        } else if (*it == "--heartbeat-timeout") {
            if (!take_value("--heartbeat-timeout", text)) return 2;
            if (!parse_double(text, options.heartbeat_timeout_s)) {
                std::fprintf(stderr, "error: --heartbeat-timeout needs seconds > 0\n");
                return 2;
            }
        } else if (*it == "--chaos-kill") {
            if (!take_value("--chaos-kill", text)) return 2;
            const std::size_t colon = text.find(':');
            std::size_t worker = 0;
            std::size_t after = 0;
            if (colon == std::string::npos ||
                !parse_size(text.substr(0, colon), worker) ||
                !parse_size(text.substr(colon + 1), after) || after == 0) {
                std::fprintf(stderr, "error: --chaos-kill needs <worker>:<k>\n");
                return 2;
            }
            options.chaos_kill_worker = static_cast<int>(worker);
            options.chaos_kill_after = after;
        } else if (*it == "--worker-failpoints") {
            if (!take_value("--worker-failpoints", text)) return 2;
            const std::size_t colon = text.find(':');
            campaign::FleetOptions::WorkerFailpoint wf;
            std::size_t slot = 0;
            if (colon == std::string::npos || colon + 1 == text.size()) {
                std::fprintf(stderr,
                             "error: --worker-failpoints needs <w|*>:<spec>\n");
                return 2;
            }
            if (text.substr(0, colon) == "*") {
                wf.slot = -1;
            } else if (parse_size(text.substr(0, colon), slot)) {
                wf.slot = static_cast<int>(slot);
            } else {
                std::fprintf(stderr,
                             "error: --worker-failpoints needs <w|*>:<spec>\n");
                return 2;
            }
            wf.spec = text.substr(colon + 1);
            options.worker_failpoints.push_back(std::move(wf));
        } else if (*it == "--failpoints") {
            if (!take_value("--failpoints", text)) return 2;
            try {
                support::failpoint::arm(text);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "error: --failpoints: %s\n", e.what());
                return 2;
            }
        } else if (*it == "--resume") {
            options.resume = true;
            it = args.erase(it);
        } else if (*it == "--quarantine-after") {
            if (!take_value("--quarantine-after", text)) return 2;
            if (!parse_size(text, options.quarantine_after) ||
                options.quarantine_after == 0) {
                std::fprintf(stderr,
                             "error: --quarantine-after needs a positive integer\n");
                return 2;
            }
        } else if (*it == "--max-respawns") {
            if (!take_value("--max-respawns", text)) return 2;
            if (!parse_size(text, options.max_respawns)) {
                std::fprintf(stderr, "error: --max-respawns needs an integer\n");
                return 2;
            }
        } else if (*it == "--respawn-backoff") {
            if (!take_value("--respawn-backoff", text)) return 2;
            if (!parse_double(text, options.respawn_backoff_s)) {
                std::fprintf(stderr, "error: --respawn-backoff needs seconds > 0\n");
                return 2;
            }
        } else if (!it->empty() && (*it)[0] == '-') {
            std::fprintf(stderr, "error: unknown flag '%s'\n", it->c_str());
            return 2;
        } else {
            if (have_out_dir) {
                print_usage(stderr);
                return 2;
            }
            out_dir = *it;
            have_out_dir = true;
            ++it;
        }
    }
    if (campaign_path.empty()) {
        print_usage(stderr);
        return 2;
    }

    support::set_log_level(support::LogLevel::Warn);
    try {
        if (!options.backend.empty()) (void)linalg::backend_by_name(options.backend);
        const campaign::FleetResult fleet = campaign::run_fleet(campaign_path, out_dir,
                                                                options);
        const campaign::FleetSummary& s = fleet.summary;
        // sdlbench-lint: allow(printf-float): terminal summary line; fleet_summary.json carries the round-trip values
        std::printf("\nFleet done: %zu cells, makespan %.1fs, busy %.1fs, "
                    // sdlbench-lint: allow(printf-float): continuation of the same terminal summary line
                    "efficiency %.0f%% (%zu workers",
                    s.cells, s.makespan_s, s.busy_s, s.efficiency * 100.0,
                    s.workers_started);
        if (s.workers_lost > 0) {
            std::printf(", %zu lost: %zu cell(s) salvaged from journals, %zu "
                        "re-leased",
                        s.workers_lost, s.cells_salvaged, s.cells_releases);
        }
        if (s.workers_respawned > 0) {
            std::printf(", %zu respawned", s.workers_respawned);
        }
        std::printf(")\n");
        std::printf("Wrote %s/{campaign.json, campaign.csv, cells.jsonl}.\n",
                    out_dir.c_str());
        if (!fleet.quarantined.empty()) {
            std::fprintf(stderr,
                         "warning: %zu cell(s) quarantined after repeated worker "
                         "crashes — see the \"quarantined\" list in campaign.json\n",
                         fleet.quarantined.size());
            return 6;
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
