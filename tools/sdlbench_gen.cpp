// sdlbench_gen — emits packs of procedurally generated workcell
// scenarios (core/scenario_gen.hpp) with their difficulty scores.
//
//   sdlbench_gen --seeds K..M [options] [out_dir]
//   sdlbench_gen --seed K     [options] [out_dir]
//
// Options:
//   --no-difficulty   skip the anneal probe runs (fast; pack records
//                     specs only)
//
// For each seed the materialized spec is written to <out_dir>/gen_<K>.yaml
// (bitwise identical to the workcell.yaml a run of that scenario saves),
// and <out_dir>/pack.json indexes the pack: per scenario the ref, plate
// format, roster size, and — unless --no-difficulty — the difficulty
// score (regret of the anneal baseline under the fixed probe budget).
// Same seeds => byte-identical pack, so packs can be regenerated
// anywhere instead of being committed.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/scenario_gen.hpp"
#include "core/workcell_spec.hpp"
#include "support/atomic_io.hpp"
#include "support/common.hpp"

namespace fs = std::filesystem;
using namespace sdl;
namespace json = support::json;

namespace {

void usage(std::FILE* to) {
    std::fputs(
        "usage: sdlbench_gen --seeds K..M [--no-difficulty] [out_dir]\n"
        "       sdlbench_gen --seed K    [--no-difficulty] [out_dir]\n"
        "\n"
        "Generates the workcell scenarios for the given seed range (the\n"
        "same specs `--scenario generated:seed=K` resolves), writes one\n"
        "gen_<K>.yaml per seed plus a pack.json index to out_dir\n"
        "(default: gen_pack/), and scores each scenario's difficulty —\n"
        "the best objective score the anneal baseline solver reaches on\n"
        "that workcell under a fixed 16-sample probe budget (0 = exact\n"
        "match; higher = harder workcell).\n",
        to);
}

}  // namespace

int main(int argc, char** argv) {
    std::string seeds_arg;
    std::string out_dir = "gen_pack";
    bool difficulty = true;
    bool have_out = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        }
        if (arg == "--no-difficulty") {
            difficulty = false;
        } else if ((arg == "--seeds" || arg == "--seed") && i + 1 < argc) {
            seeds_arg = argv[++i];
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "sdlbench_gen: unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        } else if (!have_out) {
            out_dir = arg;
            have_out = true;
        } else {
            std::fprintf(stderr, "sdlbench_gen: unexpected argument '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        }
    }
    if (seeds_arg.empty()) {
        usage(stderr);
        return 2;
    }

    try {
        // Reuse the ref grammar so CLI errors match the campaign axis.
        const std::vector<std::string> refs =
            core::expand_generated_refs("generated:seed=" + seeds_arg);

        fs::create_directories(out_dir);
        json::Value scenarios = json::Value::array();
        std::printf("%-10s %-8s %-8s %-7s %s\n", "name", "plate", "devices", "ot2s",
                    difficulty ? "difficulty" : "");
        for (const std::string& ref : refs) {
            const std::uint64_t seed = core::parse_generated_ref(ref);
            const core::WorkcellSpec spec = core::generate_scenario(seed);
            const std::string yaml = core::workcell_spec_to_yaml(spec);
            support::atomic_write((fs::path(out_dir) / (spec.name + ".yaml")).string(),
                                  yaml);

            int device_count = 0;
            int ot2s = 0;
            for (const core::DeviceSpec& d : spec.devices) {
                device_count += d.count;
                if (d.kind == core::DeviceKind::Ot2) ot2s += d.count;
            }
            const std::string plate = std::to_string(spec.plate_rows.value_or(8)) + "x" +
                                      std::to_string(spec.plate_cols.value_or(12));

            json::Value entry = json::Value::object();
            entry.set("name", spec.name);
            entry.set("seed", static_cast<std::int64_t>(seed));
            entry.set("ref", ref);
            entry.set("plate", plate);
            entry.set("devices", device_count);
            entry.set("ot2_count", ot2s);
            if (difficulty) {
                const double score = core::generated_difficulty(seed);
                entry.set("difficulty", score);
                // sdlbench-lint: allow(printf-float): terminal listing; --json output goes through the json layer
                std::printf("%-10s %-8s %-8d %-7d %.3f\n", spec.name.c_str(),
                            plate.c_str(), device_count, ot2s, score);
            } else {
                std::printf("%-10s %-8s %-8d %-7d\n", spec.name.c_str(), plate.c_str(),
                            device_count, ot2s);
            }
            scenarios.push_back(std::move(entry));
        }

        json::Value pack = json::Value::object();
        pack.set("schema", "sdlbench.scenario_pack.v1");
        pack.set("seeds", seeds_arg);
        pack.set("scenarios", std::move(scenarios));
        support::atomic_write((fs::path(out_dir) / "pack.json").string(),
                              pack.pretty() + "\n");
        std::printf("pack: %s (%zu scenarios)\n",
                    (fs::path(out_dir) / "pack.json").string().c_str(), refs.size());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "sdlbench_gen: %s\n", e.what());
        return 1;
    }
}
