#!/usr/bin/env python3
"""sdlbench_lint: machine-checks the determinism & artifact invariants.

The repo's contract — same spec => byte-identical campaign.json, seed-
paired runs reproduce — rests on a handful of source-level invariants
that used to live only in reviewers' heads. This linter turns them into
gates (docs/INVARIANTS.md catalogues the why behind each rule):

  libc-rand            no std::rand/srand: all randomness flows from
                       seeded support/random.hpp streams
  wall-clock           no system_clock/time()/localtime in scanned code:
                       wall-clock values in results break reproducibility
  steady-clock         steady_clock only at allowlisted telemetry sites
                       (suppressed-with-reason in runner.cpp/fleet.cpp);
                       bench/ is exempt — measuring time is its purpose
  unordered-iteration  no unordered containers in serializer TUs, where
                       iteration order would leak into artifact bytes
  printf-float         floats become text via support::fmt_roundtrip
                       (shortest round trip); printf %f/%g/%e is display-
                       only and must carry a suppression saying so
  raw-artifact-write   artifact writes go through support::atomic_io
                       (atomic_write / AppendWriter), never raw
                       ofstream/fopen, so readers never see torn files
  fp-contract          the root CMakeLists keeps -ffp-contract=off and no
                       build file smuggles in -ffast-math/=fast, which
                       would break cross-TU bitwise identities
  failpoint-catalog    every failpoint site named in src/ or tools/
                       (support/failpoint.hpp call sites and schedule
                       strings) appears in docs/ROBUSTNESS.md's site
                       catalog, so injectable faults stay discoverable

Suppression grammar (trailing on the offending line, or standalone on
the line directly above it; `#` instead of `//` in CMake files):

    // sdlbench-lint: allow(<rule>[,<rule>...]): <reason>

The reason is mandatory; an unknown rule id or a suppression that
matches nothing fails the run loudly (exit 2), so allowances cannot rot.
`bench/prepr_reference.{hpp,cpp}` is exempt wholesale: it is the frozen
PR-5 perf yardstick and must not be modernized.

Usage:  tools/sdlbench_lint.py [--root DIR] [--list-rules] [-q]
Exit:   0 clean, 1 findings, 2 bad suppressions / usage errors.
Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import re
import sys

CXX_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")
SCAN_DIRS = ("src", "tools", "tests", "bench")

# Frozen code the linter never touches (reported in --verbose only).
EXEMPT_PREFIXES = (
    "bench/prepr_reference.cpp",
    "bench/prepr_reference.hpp",
)

# TUs whose job is producing artifact/report bytes: iteration order of an
# unordered container here would leak straight into the output.
SERIALIZER_GLOBS = (
    "src/support/json.*",
    "src/support/yaml.*",
    "src/support/csv.*",
    "src/campaign/report.*",
    "src/campaign/checkpoint.*",
    "src/campaign/campaign_io.*",
    "src/core/config_io.*",
    "src/data/*",
)

SUPPRESS_RE = re.compile(
    r"(?://|#)\s*sdlbench-lint:\s*allow\(([^)]*)\)\s*:?\s*(.*)$"
)


class Rule:
    def __init__(self, rule_id, pattern, dirs, message, file_globs=None,
                 exclude_globs=None):
        self.id = rule_id
        self.pattern = re.compile(pattern)
        self.dirs = dirs
        self.message = message
        self.file_globs = file_globs          # None = every file in scope
        self.exclude_globs = exclude_globs or ()

    def applies_to(self, rel):
        top = rel.split("/", 1)[0]
        if top not in self.dirs:
            return False
        if any(fnmatch.fnmatch(rel, g) for g in self.exclude_globs):
            return False
        if self.file_globs is not None:
            return any(fnmatch.fnmatch(rel, g) for g in self.file_globs)
        return True


RULES = {
    "libc-rand": Rule(
        "libc-rand",
        r"\bstd::rand\b|\bsrand\s*\(|(?<![\w:.>])rand\s*\(",
        SCAN_DIRS,
        "libc rand is unseeded global state; draw from support/random.hpp "
        "seeded streams so runs reproduce",
    ),
    "wall-clock": Rule(
        "wall-clock",
        r"system_clock|\bstd::time\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
        r"|\blocaltime\b|\bgmtime\b|\bstrftime\b|\bctime\b|\bclock\s*\(\s*\)",
        SCAN_DIRS,
        "wall-clock reads leak the run date into results and break "
        "byte-identity; use modeled time (wei::Transport::now)",
    ),
    "steady-clock": Rule(
        "steady-clock",
        r"\bsteady_clock\b|\bhigh_resolution_clock\b",
        ("src", "tools", "tests"),
        "monotonic wall time is allowlisted telemetry only (journal "
        "wall_seconds, fleet heartbeats); suppress with a reason or use "
        "modeled time",
    ),
    "unordered-iteration": Rule(
        "unordered-iteration",
        r"\bstd::unordered_(?:map|set|multimap|multiset)\b",
        ("src",),
        "unordered containers in a serializer TU make artifact bytes "
        "depend on hash order; use std::map or a sorted vector",
        file_globs=SERIALIZER_GLOBS,
    ),
    "printf-float": Rule(
        "printf-float",
        r"%[-+ #0]*(?:\d+|\*)?(?:\.(?:\d+|\*))?[aefgAEFG]",
        ("src", "tools"),
        "float formatting outside support::fmt_roundtrip does not round-"
        "trip (CSV/JSON must agree byte-for-byte); printf floats are for "
        "human display only — suppress with a reason at display sites",
    ),
    "raw-artifact-write": Rule(
        "raw-artifact-write",
        r"\bstd::ofstream\b|\bofstream\s+\w|\bstd::fopen\b|(?<![\w:])fopen\s*\(",
        ("src", "tools", "bench"),
        "artifact writes bypassing support::atomic_io can be seen torn "
        "by readers/resumed runs; use atomic_write or AppendWriter",
    ),
}

FP_CONTRACT_RULE = "fp-contract"
FAILPOINT_RULE = "failpoint-catalog"
ALL_RULE_IDS = tuple(RULES) + (FP_CONTRACT_RULE, FAILPOINT_RULE)
SPECIAL_RULE_MESSAGES = {
    FP_CONTRACT_RULE: "build files keep -ffp-contract=off and no "
                      "fast-math flags",
    FAILPOINT_RULE: "failpoint sites named in src/ and tools/ appear in "
                    "docs/ROBUSTNESS.md's site catalog",
}
FP_BAD_FLAGS = re.compile(r"-ffast-math|-ffp-contract=fast|-funsafe-math"
                          r"-optimizations|-Ofast\b")
FP_GUARD = "-ffp-contract=off"

# Failpoint sites surface in C++ two ways: as the string argument of a
# failpoint call (evaluate/maybe_fail, plus atomic_io's forwarding
# lambda), and inside schedule strings ("site=kill@..."). Site names are
# dotted lower-case; the dot keeps ordinary words out.
FAILPOINT_SITE_DIRS = ("src", "tools")
FAILPOINT_CATALOG_DOC = "docs/ROBUSTNESS.md"
FAILPOINT_CALL_RE = re.compile(
    r'(?:evaluate|maybe_fail|fail_and_discard_tmp)\s*\(\s*'
    r'"([a-z0-9_]+\.[a-z0-9_.]+)"')
FAILPOINT_SPEC_RE = re.compile(
    r'"([a-z0-9_]+(?:\.[a-z0-9_]+)+)=(?:err|kill|delay)')


def load_failpoint_catalog(root):
    """Backtick-quoted dotted site names in the robustness doc, or None
    when the doc is missing entirely."""
    path = os.path.join(root, FAILPOINT_CATALOG_DOC)
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError:
        return None
    return set(re.findall(r"`([a-z0-9_]+\.[a-z0-9_.]+)`", text))


def strip_comments(text):
    """Returns the text with //, /* */ comments blanked (strings kept).

    Line count and column positions are preserved so findings point at
    the real source location. Handles escapes and R"delim(...)delim" raw
    strings; a '#' CMake comment is handled by the CMake scanner, not
    here.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '/' and i + 1 < n and text[i + 1] == '/':
            while i < n and text[i] != '\n':
                i += 1
        elif c == '/' and i + 1 < n and text[i + 1] == '*':
            i += 2
            while i < n and not (text[i] == '*' and i + 1 < n and
                                 text[i + 1] == '/'):
                if text[i] == '\n':
                    out.append('\n')
                i += 1
            i += 2 if i < n else 0
        elif c == 'R' and i + 1 < n and text[i + 1] == '"':
            j = text.find('(', i + 2)
            if j < 0:
                out.append(c)
                i += 1
                continue
            delim = text[i + 2:j]
            end = text.find(')' + delim + '"', j + 1)
            end = n if end < 0 else end + len(delim) + 2
            out.append(text[i:end])
            i = end
        elif c in '"\'':
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == '\\' and i + 1 < n:
                    out.append(text[i:i + 2])
                    i += 2
                else:
                    out.append(text[i])
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Suppression:
    def __init__(self, rel, line_no, rules, reason):
        self.rel = rel
        self.line_no = line_no      # line the suppression *covers*
        self.rules = rules
        self.reason = reason
        self.used = False


def collect_suppressions(rel, raw_lines, errors):
    """Maps covered-line-number -> [Suppression]; validates the grammar."""
    covered = {}
    pending = []  # standalone suppressions waiting for the next code line
    for idx, raw in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(raw)
        if m:
            rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
            reason = m.group(2).strip()
            bad = [r for r in rules if r not in ALL_RULE_IDS]
            if bad:
                errors.append(
                    f"{rel}:{idx}: unknown rule(s) in suppression: "
                    f"{', '.join(bad)} (known: {', '.join(ALL_RULE_IDS)})")
                continue
            if not rules:
                errors.append(f"{rel}:{idx}: suppression names no rule")
                continue
            if not reason:
                errors.append(
                    f"{rel}:{idx}: suppression for {', '.join(rules)} "
                    f"carries no reason — say why the allowance is safe")
                continue
            before = raw[:m.start()].strip()
            if before:                      # trailing: covers its own line
                sup = Suppression(rel, idx, rules, reason)
                covered.setdefault(idx, []).append(sup)
            else:                           # standalone: covers next code line
                pending.append(Suppression(rel, idx, rules, reason))
        elif raw.strip() and pending:
            for sup in pending:
                sup.line_no = idx
                covered.setdefault(idx, []).append(sup)
            pending = []
    for sup in pending:
        errors.append(f"{rel}:{sup.line_no}: standalone suppression covers "
                      f"no following line")
    return covered


def scan_cxx_file(root, rel, findings, errors, suppressions_out,
                  failpoint_catalog=None):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as exc:
        errors.append(f"{rel}: unreadable ({exc})")
        return
    raw_lines = text.splitlines()
    code_text = strip_comments(text)
    code_lines = code_text.splitlines()
    covered = collect_suppressions(rel, raw_lines, errors)
    for sups in covered.values():
        suppressions_out.extend(sups)

    rules = [r for r in RULES.values() if r.applies_to(rel)]
    for idx, code in enumerate(code_lines, start=1):
        for rule in rules:
            if not rule.pattern.search(code):
                continue
            sups = [s for s in covered.get(idx, []) if rule.id in s.rules]
            if sups:
                for s in sups:
                    s.used = True
                continue
            findings.append((rel, idx, rule.id, rule.message))

    # failpoint-catalog: dotted site names at failpoint call sites and in
    # schedule strings must be documented. Matched against the whole
    # (comment-stripped) text because call arguments wrap across lines.
    if rel.split("/", 1)[0] not in FAILPOINT_SITE_DIRS:
        return
    for pattern in (FAILPOINT_CALL_RE, FAILPOINT_SPEC_RE):
        for m in pattern.finditer(code_text):
            site = m.group(1)
            idx = code_text.count("\n", 0, m.start(1)) + 1
            sups = [s for s in covered.get(idx, [])
                    if FAILPOINT_RULE in s.rules]
            if sups:
                for s in sups:
                    s.used = True
                continue
            if failpoint_catalog is None:
                findings.append((
                    rel, idx, FAILPOINT_RULE,
                    f"failpoint site '{site}' is referenced but "
                    f"{FAILPOINT_CATALOG_DOC} does not exist — the site "
                    f"catalog is the discoverability contract"))
            elif site not in failpoint_catalog:
                findings.append((
                    rel, idx, FAILPOINT_RULE,
                    f"failpoint site '{site}' is missing from "
                    f"{FAILPOINT_CATALOG_DOC}'s site catalog — document "
                    f"it (name, layer, what the injected fault models)"))


def scan_build_files(root, findings, errors, suppressions_out):
    """The fp-contract rule: scans CMake build files, not C++."""
    build_files = ["CMakeLists.txt", "CMakePresets.json"]
    for top in SCAN_DIRS + ("cmake", "examples"):
        top_dir = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(top_dir):
            for name in filenames:
                if name == "CMakeLists.txt" or name.endswith(".cmake"):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    build_files.append(rel.replace(os.sep, "/"))

    guard_seen = False
    for rel in build_files:
        path = os.path.join(root, rel)
        if not os.path.isfile(path):
            continue
        with open(path, encoding="utf-8", errors="replace") as fh:
            raw_lines = fh.read().splitlines()
        covered = collect_suppressions(rel, raw_lines, errors)
        for sups in covered.values():
            suppressions_out.extend(sups)
        for idx, raw in enumerate(raw_lines, start=1):
            code = raw.split("#", 1)[0]
            if FP_GUARD in code:
                guard_seen = True
            if FP_BAD_FLAGS.search(code):
                sups = [s for s in covered.get(idx, [])
                        if FP_CONTRACT_RULE in s.rules]
                if sups:
                    for s in sups:
                        s.used = True
                    continue
                findings.append((
                    rel, idx, FP_CONTRACT_RULE,
                    "fast-math/contracted-FMA flags break the cross-TU "
                    "bitwise identity contracts (batched == sequential)"))
    if not guard_seen:
        findings.append((
            "CMakeLists.txt", 0, FP_CONTRACT_RULE,
            f"root build must keep '{FP_GUARD}': FMA contraction is a "
            f"per-callsite compiler choice that breaks bitwise identities"))


def iter_source_files(root):
    for top in SCAN_DIRS:
        top_dir = os.path.join(root, top)
        if not os.path.isdir(top_dir):
            continue
        for dirpath, dirnames, filenames in os.walk(top_dir):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(CXX_EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                yield rel.replace(os.sep, "/")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="sdlbench_lint",
        description="determinism & artifact-discipline linter (see "
                    "docs/INVARIANTS.md)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: the parent of tools/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="findings only, no summary line")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in ALL_RULE_IDS:
            message = (RULES[rule_id].message if rule_id in RULES else
                       SPECIAL_RULE_MESSAGES[rule_id])
            print(f"{rule_id}: {message}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(root):
        print(f"sdlbench_lint: no such root: {root}", file=sys.stderr)
        return 2

    findings, errors, suppressions = [], [], []
    exempt = 0
    failpoint_catalog = load_failpoint_catalog(root)
    for rel in iter_source_files(root):
        if any(rel.startswith(p) for p in EXEMPT_PREFIXES):
            exempt += 1
            continue
        scan_cxx_file(root, rel, findings, errors, suppressions,
                      failpoint_catalog)
    scan_build_files(root, findings, errors, suppressions)

    for sup in suppressions:
        if not sup.used:
            errors.append(
                f"{sup.rel}:{sup.line_no}: suppression for "
                f"{', '.join(sup.rules)} matches no finding — stale "
                f"allowances must be removed")

    for rel, line_no, rule_id, message in sorted(findings):
        print(f"{rel}:{line_no}: [{rule_id}] {message}")
    for err in errors:
        print(f"error: {err}", file=sys.stderr)

    if not args.quiet:
        used = sum(1 for s in suppressions if s.used)
        print(f"sdlbench_lint: {len(findings)} finding(s), {used} "
              f"suppression(s) honored, {exempt} frozen file(s) exempt",
              file=sys.stderr)
    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
