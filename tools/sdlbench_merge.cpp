// sdlbench_merge — fuses sharded campaign journals into one report.
//
//   sdlbench_merge <campaign.yaml> <out_dir> <shard_dir_or_journal>...
//
// Each shard argument is either a shard's output directory (its
// cells.jsonl is used) or a journal file path. Every journal is validated
// against the campaign file — spec digest, per-cell config digests,
// shard membership — and the merge rejects overlapping cells (two
// journals claiming one index) and incomplete coverage loudly. The
// merged campaign.json / campaign.csv written to <out_dir> are
// byte-identical to a single uninterrupted `sdlbench_run --campaign`
// over the same file, and <out_dir>/cells.jsonl is rewritten as one
// whole-grid journal, so the merged directory is itself resumable.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign_io.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/report.hpp"
#include "support/atomic_io.hpp"

using namespace sdl;

namespace {

void print_usage(std::FILE* stream) {
    std::fprintf(
        stream,
        "sdlbench_merge — fuse sharded campaign journals into one report\n"
        "\n"
        "usage: sdlbench_merge <campaign.yaml> <out_dir> <shard_dir_or_journal>...\n"
        "\n"
        "Validates every shard journal against the campaign file (spec digest,\n"
        "per-cell config digests), rejects overlaps and missing cells, and\n"
        "writes campaign.json + campaign.csv + a fused cells.jsonl to <out_dir>\n"
        "— byte-identical to a single uninterrupted run of the same campaign.\n"
        "Shards are produced with: sdlbench_run --campaign <file> --shard i/N <dir>\n");
}

std::string to_journal_path(const std::string& arg) {
    return std::filesystem::is_directory(arg) ? campaign::journal_path(arg) : arg;
}

}  // namespace

int main(int argc, char** argv) {
    const std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string& a : args) {
        if (a == "-h" || a == "--help") {
            print_usage(stdout);
            return 0;
        }
    }
    if (args.size() < 3) {
        print_usage(stderr);
        return 2;
    }

    const std::string& spec_path = args[0];
    const std::string& out_dir = args[1];
    std::vector<std::string> journals;
    for (std::size_t i = 2; i < args.size(); ++i) {
        journals.push_back(to_journal_path(args[i]));
    }

    try {
        const campaign::CampaignSpec spec = campaign::campaign_from_file(spec_path);
        const std::vector<campaign::CellResult> results =
            campaign::merge_journals(journals, spec);
        std::printf("Merged %zu journals: %zu cells of campaign '%s'\n", journals.size(),
                    results.size(), spec.name.c_str());

        campaign::write_campaign_outputs(out_dir, spec, results);
        // Rewrite the fused journal as a whole-grid (1/1) journal so the
        // merged directory can itself be resumed or re-merged.
        std::string journal_text =
            campaign::journal_header(spec, results.size(), campaign::Shard{}).dump() +
            "\n";
        for (const campaign::CellResult& result : results) {
            journal_text += campaign::cell_record_to_json(result).dump();
            journal_text += '\n';
        }
        support::atomic_write(campaign::journal_path(out_dir), journal_text);
        std::printf("Wrote %s/{campaign.json, campaign.csv, cells.jsonl}.\n",
                    out_dir.c_str());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
