// sdlbench_run — command-line driver for color-picker experiments.
//
//   sdlbench_run <experiment.yaml> [output_dir]
//
// Loads a declarative experiment file (see configs/experiment_*.yaml),
// runs it on the simulated workcell, prints the SDL metrics, and writes
// to the output directory (default "sdlbench_out"):
//   series.csv        — per-sample (index, elapsed, score, best) series
//   portal.json       — the full published data portal
//   metrics.txt       — the Table-1-style metrics report
//   config.yaml       — the resolved configuration (for reproduction)
//   artifacts/        — per-workflow timing files (§2.3)
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/config_io.hpp"
#include "core/presets.hpp"
#include "data/artifacts.hpp"
#include "metrics/metrics.hpp"
#include "support/csv.hpp"
#include "support/log.hpp"

using namespace sdl;

int main(int argc, char** argv) {
    if (argc < 2 || argc > 3) {
        std::fprintf(stderr,
                     "usage: %s <experiment.yaml> [output_dir]\n"
                     "       (see configs/experiment_quickstart.yaml for the format)\n",
                     argv[0]);
        return 2;
    }
    support::set_log_level(support::LogLevel::Warn);
    const std::string out_dir = argc == 3 ? argv[2] : "sdlbench_out";

    try {
        const core::ColorPickerConfig config = core::config_from_file(argv[1]);
        std::printf("Experiment: target %s | N=%d | B=%d | solver=%s | seed=%llu\n",
                    config.target.str().c_str(), config.total_samples, config.batch_size,
                    config.solver.c_str(),
                    static_cast<unsigned long long>(config.seed));

        core::ColorPickerApp app(config);
        const core::ExperimentOutcome outcome = app.run();

        std::printf("\nBest match: %s (score %.2f) after %zu samples\n",
                    outcome.best_color.str().c_str(), outcome.best_score,
                    outcome.samples.size());
        const std::string metrics_text = metrics::render_metrics_table(outcome.metrics);
        std::printf("\n%s", metrics_text.c_str());

        // Outputs.
        std::filesystem::create_directories(out_dir);
        support::CsvWriter csv({"sample", "elapsed_min", "score", "best_so_far"});
        for (const auto& s : outcome.samples) {
            csv.add_row(std::vector<double>{static_cast<double>(s.index),
                                            s.elapsed_minutes, s.score, s.best_so_far});
        }
        csv.save(out_dir + "/series.csv");
        {
            std::ofstream portal_file(out_dir + "/portal.json");
            portal_file << app.portal().to_json().pretty() << "\n";
        }
        {
            std::ofstream metrics_file(out_dir + "/metrics.txt");
            metrics_file << metrics_text;
        }
        {
            std::ofstream config_file(out_dir + "/config.yaml");
            config_file << core::config_to_yaml(app.config());
        }
        const std::size_t artifacts =
            data::write_run_artifacts(app.event_log(), out_dir + "/artifacts");

        std::printf("\nWrote %s/{series.csv, portal.json, metrics.txt, config.yaml} and "
                    "%zu workflow artifacts.\n",
                    out_dir.c_str(), artifacts);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
