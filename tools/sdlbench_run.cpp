// sdlbench_run — command-line driver for color-picker experiments.
//
//   sdlbench_run <experiment.yaml> [output_dir]
//   sdlbench_run --preset <name> [output_dir]
//   sdlbench_run --campaign <campaign.yaml> [output_dir]
//   sdlbench_run --campaign <campaign.yaml> --resume <dir>
//   sdlbench_run --campaign <campaign.yaml> --shard i/N [output_dir]
//   sdlbench_run --scenario <name|spec.yaml> [output_dir]
//   sdlbench_run --list-scenarios
//
// Single-experiment mode loads a declarative experiment file (or one of
// the paper-calibrated presets), runs it on the simulated workcell,
// prints the SDL metrics, and writes to the output directory (default
// "sdlbench_out"):
//   series.csv        — per-sample (index, elapsed, score, best) series
//   portal.json       — the full published data portal
//   metrics.txt       — the Table-1-style metrics report
//   config.yaml       — the resolved configuration (for reproduction)
//   artifacts/        — per-workflow timing files (§2.3)
//
// Campaign mode expands the file's solver x batch-size x objective x
// target x replicate grid, runs every cell in parallel on the thread
// pool, prints the per-group aggregate table, and writes campaign.json +
// campaign.csv to the output directory. Every finished cell is also
// checkpointed to <out_dir>/cells.jsonl (campaign/checkpoint.hpp), so a
// killed run resumes with --resume <dir> (completed cells are validated
// against the re-expanded grid and skipped) and a grid can be split
// round-robin across machines with --shard i/N; sdlbench_merge fuses the
// shard journals into one report. All reports are written atomically
// (temp file + rename), and resume/merge reproduce the exact bytes an
// uninterrupted run would have written.
//
// Either mode accepts --json <path> to additionally write the structured
// result document (single runs and campaign cells share one schema,
// "sdlbench.experiment_result.v2").
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign_io.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "core/colorpicker.hpp"
#include "core/config_io.hpp"
#include "core/presets.hpp"
#include "core/scenarios.hpp"
#include "core/workcell_spec.hpp"
#include "data/artifacts.hpp"
#include "linalg/backend.hpp"
#include "metrics/metrics.hpp"
#include "support/atomic_io.hpp"
#include "support/csv.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

using namespace sdl;

namespace {

#ifndef SDLBENCH_VERSION
#define SDLBENCH_VERSION "unknown"
#endif
constexpr const char* kVersion = SDLBENCH_VERSION;

void print_usage(std::FILE* stream) {
    std::fprintf(stream,
                 "sdlbench_run — closed-loop color-matching experiment driver\n"
                 "\n"
                 "usage: sdlbench_run <experiment.yaml> [output_dir]\n"
                 "       sdlbench_run --preset <name> [output_dir]\n"
                 "       sdlbench_run --campaign <campaign.yaml> [output_dir]\n"
                 "       sdlbench_run --campaign <campaign.yaml> --resume <dir>\n"
                 "       sdlbench_run --campaign <campaign.yaml> --shard i/N [output_dir]\n"
                 "       sdlbench_run --scenario <name|spec.yaml> [output_dir]\n"
                 "       sdlbench_run --list-scenarios\n"
                 "\n"
                 "options:\n"
                 "  -h, --help         show this help and exit\n"
                 "  --version          print version and exit\n"
                 "  --preset <name>    run a paper-calibrated preset instead of a\n"
                 "                     YAML file; names: quickstart, table1,\n"
                 "                     table1_96well, fig3_portal\n"
                 "  --campaign <file>  run a campaign file: a cartesian grid of\n"
                 "                     workcell x solver x batch_size x objective x\n"
                 "                     target x replicates, in parallel on the\n"
                 "                     thread pool; every finished cell is\n"
                 "                     checkpointed to <out_dir>/cells.jsonl\n"
                 "  --resume <dir>     resume an interrupted campaign from <dir>'s\n"
                 "                     journal: completed cells are validated\n"
                 "                     (spec + per-cell config digests) and\n"
                 "                     skipped; the merged report is byte-\n"
                 "                     identical to an uninterrupted run\n"
                 "  --shard i/N        run only the cells with index = i-1 (mod N)\n"
                 "                     (1-based i) — split one grid round-robin\n"
                 "                     across machines, then fuse the journals\n"
                 "                     with sdlbench_merge. On a single machine\n"
                 "                     prefer sdlbench_fleet: dynamic work-stealing\n"
                 "                     instead of static shards, automatic re-lease\n"
                 "                     on worker death, live-merged reports\n"
                 "  --scenario <ref>   run the experiment on a named workcell\n"
                 "                     scenario (see --list-scenarios), a workcell\n"
                 "                     spec YAML file, or a procedurally generated\n"
                 "                     scenario (generated:seed=<K>; see\n"
                 "                     sdlbench_gen); composes with an experiment\n"
                 "                     file or --preset (default: the quickstart\n"
                 "                     preset)\n"
                 "  --list-scenarios   print the workcell scenario registry and\n"
                 "                     exit\n"
                 "  --json <path>      also write the structured result document\n"
                 "                     (the same schema for single runs and\n"
                 "                     campaign cells); deterministic per spec\n"
                 "  --backend <name>   linalg backend for GP-based solvers:\n"
                 "                     strict (default; bitwise reference) or\n"
                 "                     fast (SIMD, tolerance-envelope contract);\n"
                 "                     overrides the file's linalg_backend key\n"
                 "\n"
                 "Single runs write series.csv, portal.json, metrics.txt,\n"
                 "config.yaml and per-workflow artifacts to [output_dir] (default\n"
                 "sdlbench_out); campaigns write campaign.json and campaign.csv.\n"
                 "See docs/BENCHMARKS.md for the experiment and campaign YAML\n"
                 "schemas and docs/SCENARIOS.md for workcell scenarios.\n");
}

int list_scenarios() {
    support::TextTable table({"Scenario", "Devices", "Description"});
    table.set_alignment({support::TextTable::Align::Left, support::TextTable::Align::Left,
                         support::TextTable::Align::Left});
    for (const std::string& name : core::scenario_names()) {
        const core::WorkcellSpec spec = core::scenario_by_name(name);
        std::string devices;
        for (const core::DeviceSpec& device : spec.devices) {
            if (!devices.empty()) devices += " ";
            devices += device.name;
            if (device.count > 1) devices += "x" + std::to_string(device.count);
        }
        table.add_row({name, devices, spec.description});
    }
    std::printf("Workcell scenarios (pass to --scenario or a campaign's grid.workcells;\n"
                "YAML sources in examples/scenarios/, schema in docs/SCENARIOS.md):\n\n%s"
                "\nProcedural scenarios: generated:seed=<K> (any K; campaigns may fan\n"
                "out generated:seed=<K>..<M>). See sdlbench_gen and docs/SCENARIOS.md.\n",
                table.str().c_str());
    return 0;
}

core::ColorPickerConfig preset_by_name(const std::string& name) {
    if (name == "quickstart") return core::preset_quickstart();
    if (name == "table1") return core::preset_table1();
    if (name == "table1_96well") return core::preset_table1_96well();
    if (name == "fig3_portal") return core::preset_fig3_portal();
    throw std::runtime_error("unknown preset '" + name +
                             "' (expected quickstart, table1, table1_96well, fig3_portal)");
}

// All report/spec writes go through support::atomic_write so a crash
// mid-write never leaves a torn document for a reader (or a resumed
// campaign) to trust.
void write_text_file(const std::string& path, const std::string& text) {
    support::atomic_write(path, text);
}

int run_single(const core::ColorPickerConfig& config, const std::string& out_dir,
               const std::string& json_path, const core::WorkcellSpec* scenario_spec) {
    const std::string backend_note =
        config.linalg_backend == "strict" ? "" : " | backend=" + config.linalg_backend;
    std::printf("Experiment: target %s | N=%d | B=%d | solver=%s | workcell=%s | "
                "seed=%llu%s\n",
                config.target.str().c_str(), config.total_samples, config.batch_size,
                config.solver.c_str(), config.workcell.scenario.c_str(),
                static_cast<unsigned long long>(config.seed), backend_note.c_str());

    core::ColorPickerApp app(config);
    const core::ExperimentOutcome outcome = app.run();

    // sdlbench-lint: allow(printf-float): terminal result line; report.json carries the round-trip score
    std::printf("\nBest match: %s (score %.2f) after %zu samples\n",
                outcome.best_color.str().c_str(), outcome.best_score,
                outcome.samples.size());
    const std::string metrics_text = metrics::render_metrics_table(outcome.metrics);
    std::printf("\n%s", metrics_text.c_str());

    // Outputs.
    std::filesystem::create_directories(out_dir);
    support::CsvWriter csv({"sample", "elapsed_min", "score", "best_so_far"});
    for (const auto& s : outcome.samples) {
        csv.add_row(std::vector<double>{static_cast<double>(s.index),
                                        s.elapsed_minutes, s.score, s.best_so_far});
    }
    csv.save(out_dir + "/series.csv");
    write_text_file(out_dir + "/portal.json", app.portal().to_json().pretty() + "\n");
    write_text_file(out_dir + "/metrics.txt", metrics_text);
    write_text_file(out_dir + "/config.yaml", core::config_to_yaml(app.config()));
    if (scenario_spec != nullptr) {
        // config.yaml captures the topology but not a custom spec's
        // device timings; the resolved spec itself is the full
        // reproduction artifact (rerun with --scenario workcell.yaml).
        write_text_file(out_dir + "/workcell.yaml",
                        core::workcell_spec_to_yaml(*scenario_spec));
    }
    const std::size_t artifacts =
        data::write_run_artifacts(app.event_log(), out_dir + "/artifacts");
    if (!json_path.empty()) {
        write_text_file(json_path,
                        campaign::experiment_result_to_json(app.config(), outcome)
                                .pretty() +
                            "\n");
        std::printf("\nWrote result document to %s\n", json_path.c_str());
    }

    std::printf("\nWrote %s/{series.csv, portal.json, metrics.txt, config.yaml} and "
                "%zu workflow artifacts.\n",
                out_dir.c_str(), artifacts);
    return 0;
}

int run_campaign(const std::string& spec_path, const std::string& out_dir,
                 const std::string& json_path, const std::string& shard_text,
                 const std::string& backend_override, bool resume) {
    campaign::CampaignSpec spec = campaign::campaign_from_file(spec_path);
    // Applied before the grid expands, so every cell (and the journal's
    // spec digest) reflects the overridden backend.
    if (!backend_override.empty()) spec.base.linalg_backend = backend_override;
    const campaign::Shard shard =
        shard_text.empty() ? campaign::Shard{} : campaign::Shard::parse(shard_text);
    std::vector<campaign::CampaignCell> grid = campaign::expand_grid(spec);
    std::printf("Campaign '%s': %zu cells (%zu workcells x %zu solvers x %zu batch "
                "sizes x %zu objectives x %zu targets x %d replicates), N=%d per cell\n",
                spec.name.c_str(), grid.size(), spec.axes.workcells.size(),
                spec.axes.solvers.size(), spec.axes.batch_sizes.size(),
                spec.axes.objectives.size(), spec.axes.targets.size(), spec.replicates,
                spec.base.total_samples);

    // The cells this invocation owns (round-robin slice for --shard).
    std::vector<campaign::CampaignCell> todo;
    for (const campaign::CampaignCell& cell : grid) {
        if (shard.contains(cell.index)) todo.push_back(cell);
    }
    if (!shard.is_whole()) {
        std::printf("Shard %s: %zu of %zu cells\n", shard.str().c_str(), todo.size(),
                    grid.size());
    }

    std::vector<campaign::CellResult> done;
    std::optional<campaign::CheckpointJournal> journal;
    if (resume) {
        campaign::LoadedJournal loaded =
            campaign::load_journal(campaign::journal_path(out_dir), spec, grid);
        if (!(loaded.shard == shard)) {
            std::fprintf(stderr,
                         "error: journal in '%s' belongs to shard %s; rerun with "
                         "--shard %s (or without --shard for a whole-grid journal)\n",
                         out_dir.c_str(), loaded.shard.str().c_str(),
                         loaded.shard.str().c_str());
            return 2;
        }
        done = std::move(loaded.cells);
        // Compact before appending again: drops the torn final line a
        // kill may have left, so new records don't glue onto it.
        std::string compacted;
        for (const std::string& line : loaded.lines) {
            compacted += line;
            compacted += '\n';
        }
        support::atomic_write(campaign::journal_path(out_dir), compacted);
        std::printf("Resuming: %zu cells already journaled%s, %zu still to run\n",
                    done.size(),
                    loaded.dropped_torn_tail ? " (dropped a truncated final record)"
                                             : "",
                    todo.size() - done.size());
        std::vector<bool> have(grid.size(), false);
        for (const campaign::CellResult& result : done) have[result.cell.index] = true;
        std::erase_if(todo, [&](const campaign::CampaignCell& cell) {
            return have[cell.index];
        });
        journal.emplace(campaign::CheckpointJournal::reopen(out_dir));
    } else {
        // Refuse to silently wipe real progress: a journal for this very
        // spec with completed cells almost certainly means a crashed run
        // whose operator forgot --resume.
        const std::size_t progress =
            campaign::journal_progress(campaign::journal_path(out_dir), spec);
        if (progress > 0) {
            std::fprintf(stderr,
                         "error: '%s' already holds a journal with %zu completed "
                         "cell(s) for this campaign — pass --resume %s to continue "
                         "it, or delete %s to start over\n",
                         out_dir.c_str(), progress, out_dir.c_str(),
                         campaign::journal_path(out_dir).c_str());
            return 2;
        }
        std::filesystem::create_directories(out_dir);
        journal.emplace(out_dir, spec, grid.size(), shard);
    }

    campaign::CampaignRunnerOptions options;
    // Serialized by the runner (one mutex around progress + hook), so the
    // journal append and the progress line never interleave.
    options.on_cell_done = [&journal](const campaign::CellResult& result,
                                      std::size_t done_count, std::size_t total) {
        journal->append(result);
        // sdlbench-lint: allow(printf-float): per-cell progress line on stdout; campaign.json is the artifact
        std::printf("  [%zu/%zu] %s best=%.2f (%.1fs)\n", done_count, total,
                    result.cell.config.experiment_id.c_str(), result.outcome.best_score,
                    result.wall_seconds);
    };
    const campaign::CampaignRunner runner(options);
    std::vector<campaign::CellResult> results = runner.run_cells(std::move(todo));

    // Merge resumed cells back in and restore grid order so the report
    // is byte-identical to an uninterrupted run.
    for (campaign::CellResult& result : done) results.push_back(std::move(result));
    std::sort(results.begin(), results.end(),
              [](const campaign::CellResult& a, const campaign::CellResult& b) {
                  return a.cell.index < b.cell.index;
              });

    support::TextTable table({"Workcell", "Solver", "B", "Objective", "Target", "Reps",
                              "Best (mean±sd)", "Total time", "Time per color"});
    table.set_alignment({support::TextTable::Align::Left, support::TextTable::Align::Left,
                         support::TextTable::Align::Right, support::TextTable::Align::Left,
                         support::TextTable::Align::Left, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    for (const campaign::CellAggregate& g : campaign::aggregate_results(results)) {
        table.add_row({g.workcell, g.solver, std::to_string(g.batch_size),
                       core::objective_to_string(g.objective), g.target.str(),
                       std::to_string(g.replicates),
                       support::fmt_double(g.best_score.mean(), 2) + " ± " +
                           support::fmt_double(g.best_score.stddev(), 2),
                       support::Duration::minutes(g.total_minutes.mean()).pretty(),
                       support::Duration::minutes(g.time_per_color_minutes.mean())
                           .pretty()});
    }
    std::printf("\n%s", table.str().c_str());

    const std::string doc_text = campaign::write_campaign_outputs(out_dir, spec, results);
    if (!json_path.empty()) {
        write_text_file(json_path, doc_text);
        std::printf("\nWrote result document to %s\n", json_path.c_str());
    }
    std::printf("\nWrote %s/{campaign.json, campaign.csv, cells.jsonl} (%zu cells).\n",
                out_dir.c_str(), results.size());
    if (!shard.is_whole()) {
        std::printf("Shard report covers this shard only; fuse all %zu journals with "
                    "sdlbench_merge.\n",
                    shard.count);
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const auto& a : args) {
        if (a == "-h" || a == "--help") {
            print_usage(stdout);
            return 0;
        }
        if (a == "--version") {
            std::printf("sdlbench_run %s\n", kVersion);
            return 0;
        }
        if (a == "--list-scenarios") {
            return list_scenarios();
        }
    }

    std::string preset;
    std::string campaign_path;
    std::string scenario;
    std::string json_path;
    std::string shard;
    std::string resume_dir;
    std::string backend;
    for (auto it = args.begin(); it != args.end();) {
        const auto take_value = [&](const char* flag, std::string& into) {
            if (std::next(it) == args.end()) {
                std::fprintf(stderr, "error: %s requires a value\n", flag);
                return false;
            }
            into = *std::next(it);
            it = args.erase(it, std::next(it, 2));
            return true;
        };
        if (*it == "--preset") {
            if (!take_value("--preset", preset)) return 2;
        } else if (*it == "--campaign") {
            if (!take_value("--campaign", campaign_path)) return 2;
        } else if (*it == "--scenario") {
            if (!take_value("--scenario", scenario)) return 2;
        } else if (*it == "--json") {
            if (!take_value("--json", json_path)) return 2;
        } else if (*it == "--shard") {
            if (!take_value("--shard", shard)) return 2;
        } else if (*it == "--resume") {
            if (!take_value("--resume", resume_dir)) return 2;
        } else if (*it == "--backend") {
            if (!take_value("--backend", backend)) return 2;
        } else {
            ++it;
        }
    }
    if ((!shard.empty() || !resume_dir.empty()) && campaign_path.empty()) {
        std::fprintf(stderr, "error: %s only applies to --campaign runs\n",
                     shard.empty() ? "--resume" : "--shard");
        return 2;
    }
    if (!resume_dir.empty() && !args.empty()) {
        std::fprintf(stderr,
                     "error: --resume <dir> already names the output directory; "
                     "drop the positional '%s'\n",
                     args[0].c_str());
        return 2;
    }

    const bool has_mode_flag =
        !preset.empty() || !campaign_path.empty() || !scenario.empty();
    if (!preset.empty() && !campaign_path.empty()) {
        std::fprintf(stderr, "error: --preset and --campaign are mutually exclusive\n");
        return 2;
    }
    if (!scenario.empty() && !campaign_path.empty()) {
        std::fprintf(stderr,
                     "error: --scenario applies to single runs; campaigns sweep "
                     "scenarios via the file's grid.workcells axis\n");
        return 2;
    }
    const bool positional_is_file =
        !args.empty() && (args[0].ends_with(".yaml") || args[0].ends_with(".yml"));
    // With only --scenario, a YAML positional is the experiment file the
    // scenario composes with, not the output directory.
    const bool scenario_with_file =
        preset.empty() && campaign_path.empty() && positional_is_file;
    const std::size_t max_positionals = has_mode_flag && !scenario_with_file ? 1u : 2u;
    if ((args.empty() && !has_mode_flag) || args.size() > max_positionals) {
        print_usage(stderr);
        return 2;
    }
    if ((!preset.empty() || !campaign_path.empty()) && positional_is_file) {
        std::fprintf(stderr,
                     "error: got both a mode flag and experiment file '%s' — pass one "
                     "or the other\n",
                     args[0].c_str());
        return 2;
    }
    support::set_log_level(support::LogLevel::Warn);
    const std::size_t out_dir_index = (has_mode_flag && !scenario_with_file) ? 0 : 1;
    const std::string out_dir =
        !resume_dir.empty()
            ? resume_dir
            : (args.size() > out_dir_index ? args[out_dir_index] : "sdlbench_out");

    try {
        // Resolve the name up front: a typo exits here with the valid
        // set listed, before any file or grid work starts.
        if (!backend.empty()) (void)linalg::backend_by_name(backend);
        if (!campaign_path.empty()) {
            return run_campaign(campaign_path, out_dir, json_path, shard, backend,
                                !resume_dir.empty());
        }
        core::ColorPickerConfig config;
        if (!preset.empty()) {
            config = preset_by_name(preset);
        } else if (scenario_with_file || scenario.empty()) {
            config = core::config_from_file(args[0]);
        } else {
            config = core::preset_quickstart();
        }
        std::optional<core::WorkcellSpec> scenario_spec;
        if (!scenario.empty()) {
            scenario_spec = core::resolve_scenario(scenario);
            config = core::apply_workcell_spec(std::move(config), *scenario_spec);
        }
        if (!backend.empty()) config.linalg_backend = backend;
        return run_single(config, out_dir, json_path,
                          scenario_spec ? &*scenario_spec : nullptr);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
