// sdlbench_run — command-line driver for color-picker experiments.
//
//   sdlbench_run <experiment.yaml> [output_dir]
//   sdlbench_run --preset <name> [output_dir]
//
// Loads a declarative experiment file (or one of the paper-calibrated
// presets), runs it on the simulated workcell, prints the SDL metrics,
// and writes to the output directory (default "sdlbench_out"):
//   series.csv        — per-sample (index, elapsed, score, best) series
//   portal.json       — the full published data portal
//   metrics.txt       — the Table-1-style metrics report
//   config.yaml       — the resolved configuration (for reproduction)
//   artifacts/        — per-workflow timing files (§2.3)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/presets.hpp"
#include "data/artifacts.hpp"
#include "metrics/metrics.hpp"
#include "support/csv.hpp"
#include "support/log.hpp"

using namespace sdl;

namespace {

#ifndef SDLBENCH_VERSION
#define SDLBENCH_VERSION "unknown"
#endif
constexpr const char* kVersion = SDLBENCH_VERSION;

void print_usage(std::FILE* stream) {
    std::fprintf(stream,
                 "sdlbench_run — closed-loop color-matching experiment driver\n"
                 "\n"
                 "usage: sdlbench_run <experiment.yaml> [output_dir]\n"
                 "       sdlbench_run --preset <name> [output_dir]\n"
                 "\n"
                 "options:\n"
                 "  -h, --help       show this help and exit\n"
                 "  --version        print version and exit\n"
                 "  --preset <name>  run a paper-calibrated preset instead of a\n"
                 "                   YAML file; names: quickstart, table1,\n"
                 "                   table1_96well, fig3_portal\n"
                 "\n"
                 "Outputs series.csv, portal.json, metrics.txt, config.yaml and\n"
                 "per-workflow artifacts to [output_dir] (default sdlbench_out).\n");
}

core::ColorPickerConfig preset_by_name(const std::string& name) {
    if (name == "quickstart") return core::preset_quickstart();
    if (name == "table1") return core::preset_table1();
    if (name == "table1_96well") return core::preset_table1_96well();
    if (name == "fig3_portal") return core::preset_fig3_portal();
    throw std::runtime_error("unknown preset '" + name +
                             "' (expected quickstart, table1, table1_96well, fig3_portal)");
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const auto& a : args) {
        if (a == "-h" || a == "--help") {
            print_usage(stdout);
            return 0;
        }
        if (a == "--version") {
            std::printf("sdlbench_run %s\n", kVersion);
            return 0;
        }
    }

    std::string preset;
    for (auto it = args.begin(); it != args.end();) {
        if (*it == "--preset") {
            if (std::next(it) == args.end()) {
                std::fprintf(stderr, "error: --preset requires a name\n");
                return 2;
            }
            preset = *std::next(it);
            it = args.erase(it, std::next(it, 2));
        } else {
            ++it;
        }
    }

    if ((args.empty() && preset.empty()) || args.size() > (preset.empty() ? 2u : 1u)) {
        print_usage(stderr);
        return 2;
    }
    if (!preset.empty() && !args.empty() &&
        (args[0].ends_with(".yaml") || args[0].ends_with(".yml"))) {
        std::fprintf(stderr,
                     "error: got both --preset %s and experiment file '%s' — pass one "
                     "or the other\n",
                     preset.c_str(), args[0].c_str());
        return 2;
    }
    support::set_log_level(support::LogLevel::Warn);
    const std::size_t out_dir_index = preset.empty() ? 1 : 0;
    const std::string out_dir =
        args.size() > out_dir_index ? args[out_dir_index] : "sdlbench_out";

    try {
        const core::ColorPickerConfig config =
            preset.empty() ? core::config_from_file(args[0]) : preset_by_name(preset);
        std::printf("Experiment: target %s | N=%d | B=%d | solver=%s | seed=%llu\n",
                    config.target.str().c_str(), config.total_samples, config.batch_size,
                    config.solver.c_str(),
                    static_cast<unsigned long long>(config.seed));

        core::ColorPickerApp app(config);
        const core::ExperimentOutcome outcome = app.run();

        std::printf("\nBest match: %s (score %.2f) after %zu samples\n",
                    outcome.best_color.str().c_str(), outcome.best_score,
                    outcome.samples.size());
        const std::string metrics_text = metrics::render_metrics_table(outcome.metrics);
        std::printf("\n%s", metrics_text.c_str());

        // Outputs.
        std::filesystem::create_directories(out_dir);
        support::CsvWriter csv({"sample", "elapsed_min", "score", "best_so_far"});
        for (const auto& s : outcome.samples) {
            csv.add_row(std::vector<double>{static_cast<double>(s.index),
                                            s.elapsed_minutes, s.score, s.best_so_far});
        }
        csv.save(out_dir + "/series.csv");
        {
            std::ofstream portal_file(out_dir + "/portal.json");
            portal_file << app.portal().to_json().pretty() << "\n";
        }
        {
            std::ofstream metrics_file(out_dir + "/metrics.txt");
            metrics_file << metrics_text;
        }
        {
            std::ofstream config_file(out_dir + "/config.yaml");
            config_file << core::config_to_yaml(app.config());
        }
        const std::size_t artifacts =
            data::write_run_artifacts(app.event_log(), out_dir + "/artifacts");

        std::printf("\nWrote %s/{series.csv, portal.json, metrics.txt, config.yaml} and "
                    "%zu workflow artifacts.\n",
                    out_dir.c_str(), artifacts);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
