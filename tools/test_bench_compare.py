#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py (stdlib unittest; wired into
ctest as ``bench_compare_unittests``).

The cases that matter most are the quiet failure modes of a float-based
gate: NaN (every comparison is False), null leaves (silently invisible
to a numeric walk), and vacuous comparisons — each must fail loudly and
name the offending metric path.
"""

from __future__ import annotations

import contextlib
import importlib.util
import io
import json
import pathlib
import tempfile
import unittest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare", pathlib.Path(__file__).resolve().parent / "bench_compare.py"
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def run_compare(baseline, current, *extra_args):
    """Writes both docs to a temp dir, runs main(), and returns
    (exit_code, captured_stdout)."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = pathlib.Path(tmp) / "baseline.json"
        cur_path = pathlib.Path(tmp) / "current.json"
        base_path.write_text(json.dumps(baseline), encoding="utf-8")
        cur_path.write_text(json.dumps(current), encoding="utf-8")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = bench_compare.main(
                ["--baseline", str(base_path), "--current", str(cur_path), *extra_args]
            )
        return code, out.getvalue()


class DirectionTest(unittest.TestCase):
    def test_latency_suffixes_are_lower_better(self):
        for path in ("a.mean_ns", "a.total_seconds", "a.wall_s", "a.p50_ns_hot"):
            self.assertEqual(bench_compare.direction(path), "lower", path)

    def test_throughput_names_are_higher_better(self):
        for path in ("a.frames_per_sec", "a.speedup", "a.batch_speedup"):
            self.assertEqual(bench_compare.direction(path), "higher", path)

    def test_everything_else_is_informational(self):
        for path in ("a.samples", "a.label", "a.best_score"):
            self.assertIsNone(bench_compare.direction(path), path)


class GateTest(unittest.TestCase):
    def test_matching_runs_pass(self):
        code, out = run_compare({"k": {"mean_ns": 100}}, {"k": {"mean_ns": 101}})
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_regression_beyond_tolerance_fails(self):
        code, out = run_compare(
            {"k": {"mean_ns": 100}}, {"k": {"mean_ns": 200}}, "--tolerance", "25"
        )
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION k.mean_ns", out)

    def test_improvement_of_higher_better_metric_passes(self):
        code, _ = run_compare({"k": {"speedup": 2.0}}, {"k": {"speedup": 3.0}})
        self.assertEqual(code, 0)

    def test_nan_current_value_fails_and_names_the_metric(self):
        # float('nan') serializes as bare NaN, which json.load happily
        # reads back; every comparison against it is False, so without
        # the explicit finiteness check the gate would pass vacuously.
        code, out = run_compare(
            {"k": {"mean_ns": 100}}, {"k": {"mean_ns": float("nan")}}
        )
        self.assertEqual(code, 1)
        self.assertIn("INVALID current value for k.mean_ns", out)

    def test_nan_baseline_value_fails_too(self):
        code, out = run_compare(
            {"k": {"mean_ns": float("nan")}}, {"k": {"mean_ns": 100}}
        )
        self.assertEqual(code, 1)
        self.assertIn("INVALID baseline value for k.mean_ns", out)

    def test_null_gated_leaf_fails_and_names_the_metric(self):
        code, out = run_compare(
            {"k": {"mean_ns": 100, "speedup": 2.0}},
            {"k": {"mean_ns": None, "speedup": 2.0}},
        )
        self.assertEqual(code, 1)
        self.assertIn("INVALID current value for k.mean_ns: null", out)

    def test_null_informational_leaf_is_ignored(self):
        code, _ = run_compare(
            {"k": {"mean_ns": 100, "note": None}}, {"k": {"mean_ns": 100, "note": None}}
        )
        self.assertEqual(code, 0)

    def test_warn_only_reports_nan_but_exits_zero(self):
        code, out = run_compare(
            {"k": {"mean_ns": 100}},
            {"k": {"mean_ns": float("nan")}},
            "--warn-only",
        )
        self.assertEqual(code, 0)
        self.assertIn("INVALID current value for k.mean_ns", out)
        self.assertIn("warnings", out)

    def test_vacuous_comparison_fails(self):
        code, out = run_compare({"k": {"label": 3}}, {"k": {"label": 3}})
        self.assertEqual(code, 1)
        self.assertIn("no metrics were compared", out)

    def test_missing_gated_metric_fails(self):
        code, out = run_compare(
            {"k": {"mean_ns": 100, "old_ns": 5}}, {"k": {"mean_ns": 100}}
        )
        self.assertEqual(code, 1)
        self.assertIn("metric disappeared: k.old_ns", out)

    def test_only_and_exclude_filter_scope(self):
        baseline = {"k": {"speedup": 2.0, "mean_ns": 100, "render_speedup": 5.0}}
        current = {"k": {"speedup": 2.0, "mean_ns": 900, "render_speedup": 1.0}}
        code, _ = run_compare(
            baseline, current, "--only", "speedup", "--exclude", "render_speedup"
        )
        self.assertEqual(code, 0)

    def test_list_items_are_keyed_by_stable_labels(self):
        leaves = dict(
            bench_compare.numeric_leaves(
                {"rows": [{"scenario": "base", "mean_ns": 10},
                          {"n": 64, "candidates": 256, "mean_ns": 20}]}
            )
        )
        self.assertIn("rows[base].mean_ns", leaves)
        self.assertIn("rows[n64_c256].mean_ns", leaves)


if __name__ == "__main__":
    unittest.main()
