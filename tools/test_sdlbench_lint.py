#!/usr/bin/env python3
"""Unit tests for tools/sdlbench_lint.py (stdlib unittest, no deps).

Each rule gets at least one positive case (a tiny synthetic tree that
must be flagged) and one suppressed case (the same offense carrying a
reasoned allowance, which must lint clean). The suppression grammar's
failure modes — unknown rule id, missing reason, stale allowance — are
exercised explicitly because they are what keeps the gate honest.

Run directly (`python3 tools/test_sdlbench_lint.py`) or via ctest
(`ctest -R sdlbench_lint_unittests`).
"""

import io
import os
import shutil
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import sdlbench_lint  # noqa: E402


# Every synthetic root gets a guarded CMakeLists so the fp-contract
# "guard missing" finding does not pollute unrelated rule tests.
GUARDED_CMAKE = "add_compile_options(-ffp-contract=off)\n"


class LintHarness(unittest.TestCase):
    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="sdlbench_lint_test_")
        self.write("CMakeLists.txt", GUARDED_CMAKE)

    def tearDown(self):
        shutil.rmtree(self.root, ignore_errors=True)

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path) or self.root, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        return path

    def run_lint(self, *extra_args):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = sdlbench_lint.main(["--root", self.root, *extra_args])
        return code, out.getvalue(), err.getvalue()

    def assert_flags(self, rule_id, rel, content, line=None):
        self.write(rel, content)
        code, out, _err = self.run_lint()
        self.assertEqual(code, 1, f"expected a finding, got:\n{out}")
        self.assertIn(f"[{rule_id}]", out)
        self.assertIn(rel, out)
        if line is not None:
            self.assertIn(f"{rel}:{line}:", out)

    def assert_clean(self, rel, content):
        self.write(rel, content)
        code, out, err = self.run_lint()
        self.assertEqual(code, 0, f"expected clean, got:\n{out}\n{err}")


class TestLibcRand(LintHarness):
    def test_flags_std_rand(self):
        self.assert_flags("libc-rand", "src/solver/x.cpp",
                          "int f() { return std::rand(); }\n", line=1)

    def test_flags_bare_srand(self):
        self.assert_flags("libc-rand", "tools/t.cpp",
                          "void g() { srand(42); }\n")

    def test_member_rand_is_not_flagged(self):
        self.assert_clean("src/solver/x.cpp",
                          "double f(Rng& rng) { return rng.rand(); }\n")

    def test_suppressed_with_reason(self):
        self.assert_clean(
            "src/solver/x.cpp",
            "// sdlbench-lint: allow(libc-rand): exercising the ban in a test fixture\n"
            "int f() { return std::rand(); }\n")


class TestWallClock(LintHarness):
    def test_flags_system_clock(self):
        self.assert_flags(
            "wall-clock", "src/campaign/x.cpp",
            "auto t = std::chrono::system_clock::now();\n", line=1)

    def test_flags_time_nullptr(self):
        self.assert_flags("wall-clock", "tests/t.cpp",
                          "auto t = time(nullptr);\n")

    def test_named_lambda_call_is_not_libc_clock(self):
        # A local callable named `now` must not trip the libc clock() ban.
        self.assert_clean("bench/b.cpp",
                          "auto t0 = now();\ndouble runtime(Runtime& r) "
                          "{ return r.clock_scale; }\n")

    def test_trailing_suppression(self):
        self.assert_clean(
            "src/campaign/x.cpp",
            "auto t = std::chrono::system_clock::now();  "
            "// sdlbench-lint: allow(wall-clock): journal-only timestamp\n")


class TestSteadyClock(LintHarness):
    def test_flags_in_src(self):
        self.assert_flags("steady-clock", "src/campaign/x.cpp",
                          "auto t = std::chrono::steady_clock::now();\n")

    def test_bench_is_out_of_scope(self):
        # Measuring wall time is what bench drivers are *for*.
        self.assert_clean("bench/b.cpp",
                          "auto t = std::chrono::steady_clock::now();\n")

    def test_suppressed_with_reason(self):
        self.assert_clean(
            "src/campaign/x.cpp",
            "// sdlbench-lint: allow(steady-clock): heartbeat deadline, never a report byte\n"
            "auto t = std::chrono::steady_clock::now();\n")


class TestUnorderedIteration(LintHarness):
    SNIPPET = "#include <unordered_map>\nstd::unordered_map<int, int> m;\n"

    def test_flags_in_serializer_tu(self):
        self.assert_flags("unordered-iteration", "src/support/json.cpp",
                          self.SNIPPET, line=2)

    def test_non_serializer_tu_is_out_of_scope(self):
        self.assert_clean("src/solver/bayes.cpp", self.SNIPPET)

    def test_suppressed_with_reason(self):
        self.assert_clean(
            "src/support/json.cpp",
            "// sdlbench-lint: allow(unordered-iteration): lookup only, keys re-sorted before emit\n"
            "std::unordered_map<int, int> m;\n")


class TestPrintfFloat(LintHarness):
    def test_flags_percent_g(self):
        self.assert_flags("printf-float", "src/campaign/x.cpp",
                          'std::snprintf(buf, n, "%g", v);\n')

    def test_flags_precision_f(self):
        self.assert_flags("printf-float", "tools/t.cpp",
                          'std::printf("%.2f\\n", v);\n')

    def test_integer_formats_are_clean(self):
        self.assert_clean("src/campaign/x.cpp",
                          'std::printf("%d %s %zu %04x\\n", i, s, z, u);\n')

    def test_tests_are_out_of_scope(self):
        self.assert_clean("tests/t.cpp", 'std::printf("%.2f\\n", v);\n')

    def test_suppressed_with_reason(self):
        self.assert_clean(
            "tools/t.cpp",
            '// sdlbench-lint: allow(printf-float): progress line for humans\n'
            'std::printf("%.2f\\n", v);\n')


class TestRawArtifactWrite(LintHarness):
    def test_flags_ofstream(self):
        self.assert_flags("raw-artifact-write", "src/data/x.cpp",
                          '#include <fstream>\nstd::ofstream out("a.json");\n',
                          line=2)

    def test_flags_fopen(self):
        self.assert_flags("raw-artifact-write", "bench/b.cpp",
                          'FILE* f = std::fopen("a.json", "w");\n')

    def test_ifstream_reads_are_clean(self):
        self.assert_clean("src/data/x.cpp",
                          'std::ifstream in("a.json");\n')

    def test_tests_are_out_of_scope(self):
        self.assert_clean("tests/t.cpp", 'std::ofstream out("fixture.json");\n')

    def test_suppressed_with_reason(self):
        self.assert_clean(
            "src/data/x.cpp",
            'std::ofstream out(tmp);  '
            '// sdlbench-lint: allow(raw-artifact-write): writes the temp file atomic_write renames\n')


class TestFpContract(LintHarness):
    def test_missing_guard_is_flagged(self):
        self.write("CMakeLists.txt", "project(x)\n")
        code, out, _err = self.run_lint()
        self.assertEqual(code, 1)
        self.assertIn("[fp-contract]", out)

    def test_fast_math_is_flagged(self):
        self.write("src/CMakeLists.txt",
                   "add_compile_options(-ffast-math)\n")
        code, out, _err = self.run_lint()
        self.assertEqual(code, 1)
        self.assertIn("[fp-contract]", out)
        self.assertIn("src/CMakeLists.txt", out)

    def test_cmake_comment_is_not_code(self):
        self.write("src/CMakeLists.txt",
                   "# never pass -ffast-math here\nadd_library(x x.cpp)\n")
        code, out, _err = self.run_lint()
        self.assertEqual(code, 0, out)

    def test_hash_suppression_in_cmake(self):
        self.write(
            "src/CMakeLists.txt",
            "# sdlbench-lint: allow(fp-contract): scratch target, excluded from identity suites\n"
            "add_compile_options(-ffast-math)\n")
        code, out, _err = self.run_lint()
        self.assertEqual(code, 0, out)


class TestFailpointCatalog(LintHarness):
    CALL = ('#include "support/failpoint.hpp"\n'
            'void f() { support::failpoint::maybe_fail("demo.site", "io"); }\n')

    def test_documented_site_is_clean(self):
        self.write("docs/ROBUSTNESS.md",
                   "| `demo.site` | demo | a documented site |\n")
        self.assert_clean("src/a.cpp", self.CALL)

    def test_undocumented_site_is_flagged(self):
        self.write("docs/ROBUSTNESS.md",
                   "| `other.site` | demo | the only documented site |\n")
        self.write("src/a.cpp", self.CALL)
        code, out, _err = self.run_lint()
        self.assertEqual(code, 1, out)
        self.assertIn("[failpoint-catalog]", out)
        self.assertIn("'demo.site' is missing from", out)
        self.assertIn("src/a.cpp:2:", out)

    def test_missing_doc_is_its_own_message(self):
        self.write("src/a.cpp", self.CALL)
        code, out, _err = self.run_lint()
        self.assertEqual(code, 1, out)
        self.assertIn("[failpoint-catalog]", out)
        self.assertIn("does not exist", out)

    def test_spec_strings_are_scanned_too(self):
        # Hard-coded schedule strings (e.g. --chaos-kill sugar) name
        # sites without ever calling maybe_fail.
        self.write("docs/ROBUSTNESS.md", "no catalog entries here\n")
        self.assert_flags("failpoint-catalog", "tools/t.cpp",
                          'const char* spec = "demo.site=kill@1#1";\n',
                          line=1)

    def test_tests_are_out_of_scope(self):
        # The framework's own tests arm ad-hoc sites on purpose.
        self.assert_clean("tests/t.cpp", self.CALL)

    def test_suppressed_with_reason(self):
        self.assert_clean(
            "src/a.cpp",
            "// sdlbench-lint: allow(failpoint-catalog): scratch site, not part of the public catalog\n"
            'void f() { support::failpoint::maybe_fail("demo.site", "io"); }\n')


class TestSuppressionGrammar(LintHarness):
    def test_unknown_rule_fails_loudly(self):
        self.write("src/a.cpp",
                   "// sdlbench-lint: allow(no-such-rule): whatever\n"
                   "int x = 0;\n")
        code, _out, err = self.run_lint()
        self.assertEqual(code, 2)
        self.assertIn("unknown rule", err)

    def test_missing_reason_fails_loudly(self):
        self.write("src/a.cpp",
                   "auto t = std::chrono::system_clock::now();  "
                   "// sdlbench-lint: allow(wall-clock):\n")
        code, _out, err = self.run_lint()
        self.assertEqual(code, 2)
        self.assertIn("no reason", err)

    def test_stale_suppression_fails_loudly(self):
        self.write("src/a.cpp",
                   "// sdlbench-lint: allow(wall-clock): nothing here needs this\n"
                   "int x = 0;\n")
        code, _out, err = self.run_lint()
        self.assertEqual(code, 2)
        self.assertIn("matches no finding", err)

    def test_comma_list_covers_both_rules(self):
        self.assert_clean(
            "src/support/json.cpp",
            "// sdlbench-lint: allow(unordered-iteration,wall-clock): synthetic combined case\n"
            "std::unordered_map<int, int> m; auto t = std::chrono::system_clock::now();\n")

    def test_suppression_is_per_rule(self):
        # An allowance for rule A must not hide a finding for rule B on
        # the same line.
        self.write(
            "src/support/json.cpp",
            "// sdlbench-lint: allow(wall-clock): timestamping only\n"
            "std::unordered_map<int, int> m; auto t = std::chrono::system_clock::now();\n")
        code, out, _err = self.run_lint()
        self.assertEqual(code, 1)
        self.assertIn("[unordered-iteration]", out)


class TestScanner(LintHarness):
    def test_comments_are_stripped(self):
        self.assert_clean("src/a.cpp",
                          "// std::rand() in a comment is fine\n"
                          "/* so is std::ofstream in a block\n"
                          "   spanning lines */\nint x = 0;\n")

    def test_string_literals_are_scanned(self):
        # "%g" lives inside a string literal — exactly where printf
        # formats live; stripping must keep strings.
        self.assert_flags("printf-float", "src/campaign/x.cpp",
                          'const char* fmt = "%g";\n')

    def test_frozen_reference_is_exempt(self):
        self.assert_clean("bench/prepr_reference.cpp",
                          "auto t = std::chrono::system_clock::now();\n"
                          'std::ofstream out("frozen.json");\n')

    def test_finding_points_at_real_line(self):
        self.assert_flags("wall-clock", "src/a.cpp",
                          "int a;\nint b;\n"
                          "auto t = std::chrono::system_clock::now();\n",
                          line=3)

    def test_list_rules_names_every_rule(self):
        code, out, _err = self.run_lint("--list-rules")
        self.assertEqual(code, 0)
        for rule_id in sdlbench_lint.ALL_RULE_IDS:
            self.assertIn(rule_id, out)


class TestRepoIsClean(unittest.TestCase):
    def test_the_actual_repo_lints_clean(self):
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = sdlbench_lint.main(["--root", repo])
        self.assertEqual(
            code, 0,
            f"the repo must lint clean (docs/INVARIANTS.md):\n"
            f"{out.getvalue()}\n{err.getvalue()}")


if __name__ == "__main__":
    unittest.main()
