// validate_specs — parse-checks every YAML spec so shipped files can't
// silently rot.
//
//   validate_specs <file-or-directory>...
//
// Every .yaml/.yml under the given paths is classified by its marker
// section and run through the corresponding loader (which enforces the
// full schema: unknown keys, unknown devices, duplicate names, bad
// values all throw):
//   campaign:  -> campaign_from_file + expand_grid (also resolves every
//                 grid.workcells scenario reference and generates ids)
//   devices:   -> core::workcell_spec_from_yaml
//   otherwise  -> core::config_from_file (experiment file; resolves a
//                 workcell.scenario reference too)
//
// Exit code 0 when every file parses; 1 with one line per failure
// otherwise. CI runs it over examples/campaigns/ and examples/scenarios/
// (see .github/workflows/ci.yml), and a ctest entry does the same
// locally.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign_io.hpp"
#include "core/config_io.hpp"
#include "core/workcell_spec.hpp"
#include "support/yaml.hpp"

namespace fs = std::filesystem;
using namespace sdl;

namespace {

std::string read_file(const fs::path& path) {
    std::ifstream file(path);
    if (!file) throw std::runtime_error("cannot open file");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
}

/// Returns the kind of spec validated ("campaign", "workcell",
/// "experiment"); throws on any schema violation.
std::string validate_one(const fs::path& path) {
    const std::string text = read_file(path);
    const support::json::Value doc = support::yaml::parse(text);
    if (doc.is_object() && doc.contains("campaign")) {
        // The file loader rebases relative grid.workcells spec paths;
        // expanding the grid then resolves every scenario reference and
        // generates the experiment ids, so a renamed scenario file or a
        // typo'd registry name fails here, not at run time.
        (void)campaign::expand_grid(campaign::campaign_from_file(path.string()));
        return "campaign";
    }
    if (doc.is_object() && doc.contains("devices")) {
        (void)core::workcell_spec_from_yaml(text);
        return "workcell";
    }
    (void)core::config_from_file(path.string());
    return "experiment";
}

bool is_yaml(const fs::path& path) {
    return path.extension() == ".yaml" || path.extension() == ".yml";
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: validate_specs <file-or-directory>...\n"
                     "parse-checks campaign, workcell-scenario and experiment YAML "
                     "files\n");
        return 2;
    }

    std::vector<fs::path> files;
    for (int i = 1; i < argc; ++i) {
        const fs::path path(argv[i]);
        if (fs::is_directory(path)) {
            for (const auto& entry : fs::recursive_directory_iterator(path)) {
                if (entry.is_regular_file() && is_yaml(entry.path())) {
                    files.push_back(entry.path());
                }
            }
        } else if (fs::is_regular_file(path)) {
            files.push_back(path);
        } else {
            std::fprintf(stderr, "validate_specs: no such file or directory: %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (files.empty()) {
        std::fprintf(stderr, "validate_specs: no YAML files under the given paths\n");
        return 2;
    }

    int failures = 0;
    for (const fs::path& path : files) {
        try {
            const std::string kind = validate_one(path);
            std::printf("  OK  %-10s %s\n", kind.c_str(), path.string().c_str());
        } catch (const std::exception& e) {
            ++failures;
            std::printf("FAIL  %s\n      %s\n", path.string().c_str(), e.what());
        }
    }
    std::printf("validate_specs: %zu file(s), %d failure(s)\n", files.size(), failures);
    return failures == 0 ? 0 : 1;
}
